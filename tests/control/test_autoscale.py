"""Autoscaler: pinned scaling trace, warm-up cost, drain safety."""

import pytest

from repro.chaos.invariants import InvariantChecker
from repro.control import (
    AutoscaleConfig,
    ControllerConfig,
    assign_replicas,
    autoscaled_serve,
)
from repro.serve import ServeConfig, WorkloadConfig, make_workload
from repro.utils import ConfigError

from tests.control.conftest import digest

#: per-replica capacity that makes the pinned diurnal stream exercise
#: both directions of the scaler (the qps/max default is too coarse)
TARGET = 6000.0


@pytest.fixture(scope="module")
def rich_diurnal(nodes):
    """A longer diurnal stream with clear peaks and troughs."""
    return make_workload(
        WorkloadConfig(num_requests=768, arrival="diurnal", seed=5), nodes
    )


@pytest.fixture(scope="module")
def scaled(system, rich_diurnal):
    scale = AutoscaleConfig(min_replicas=1, max_replicas=3,
                            target_qps_per_replica=TARGET)
    return autoscaled_serve(system, rich_diurnal, 8000.0, scale=scale,
                            config=ServeConfig(check_invariants=True))


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"min_replicas": 0},
        {"min_replicas": 3, "max_replicas": 2},
        {"target_qps_per_replica": 0.0},
        {"interval_s": 0.0},
        {"up_threshold": 0.5, "down_threshold": 0.5},
        {"up_threshold": 1.5},
        {"down_threshold": 0.0},
        {"ewma": 0.0},
        {"warmup_s": -1.0},
        {"cooldown_intervals": -1},
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            AutoscaleConfig(**kwargs)

    def test_empty_stream_rejected(self):
        with pytest.raises(ConfigError):
            assign_replicas([], AutoscaleConfig(), 1000.0)


class TestPinnedTrace:
    """The diurnal load cycle drives a full up/down/up/down trace."""

    def test_pinned_action_sequence(self, scaled):
        auto = scaled.control["autoscale"]
        trace = [(a["kind"], a["before"], a["after"])
                 for a in auto["actions"]]
        assert trace == [
            ("scale-up", 1, 2), ("scale-up", 2, 3), ("scale-down", 3, 1),
            ("scale-up", 1, 2), ("scale-up", 2, 3), ("scale-down", 3, 2),
        ]
        assert auto["final_replicas"] == 2

    def test_scale_down_never_sheds(self, scaled, rich_diurnal):
        assert scaled.shed == 0
        assert scaled.completed == len(rich_diurnal.nodes)

    def test_timeline_respects_bounds(self, scaled):
        for entry in scaled.control["autoscale"]["timeline"]:
            assert 1 <= entry["active"] + entry["warming"] <= 3
            assert entry["active"] >= 1

    def test_summary_shape(self, scaled):
        auto = scaled.control["autoscale"]
        assert set(auto) == {"interval_ms", "warmup_ms",
                             "target_qps_per_replica", "actions",
                             "timeline", "final_replicas",
                             "max_replicas_used"}
        assert auto["target_qps_per_replica"] == TARGET


class TestWarmup:
    def test_new_replica_unroutable_until_warm(self, rich_diurnal):
        """No request may land on a replica before its warm-up ends:
        scale-up at boundary t makes the replica routable only from
        the first interval boundary at or after t + warmup_s."""
        scale = AutoscaleConfig(min_replicas=1, max_replicas=3,
                                target_qps_per_replica=TARGET)
        reqs = rich_diurnal.requests(8000.0)
        assign, state = assign_replicas(reqs, scale, 8000.0)
        born = {}  # replica -> scale-up decision time
        for a in state.actions:
            if a.kind == "scale-up":
                for rep in range(int(a.before), int(a.after)):
                    born.setdefault(rep, a.t)
        interval = state.interval_s
        for req, rep in zip(reqs, assign):
            if rep in born:
                assert req.arrival >= born[rep] + state.warmup_s - interval

    def test_warmup_defaults_to_one_interval(self, rich_diurnal):
        reqs = rich_diurnal.requests(8000.0)
        _, state = assign_replicas(reqs, AutoscaleConfig(), 8000.0)
        assert state.warmup_s == state.interval_s


class TestSafety:
    def test_scale_safety_invariant_holds(self, rich_diurnal):
        """The invariant checker audits that no request is routed to a
        replica after its retirement — the pinned trace passes it."""
        scale = AutoscaleConfig(min_replicas=1, max_replicas=3,
                                target_qps_per_replica=TARGET)
        inv = InvariantChecker()
        assign_replicas(rich_diurnal.requests(8000.0), scale, 8000.0,
                        invariants=inv)
        inv.finalize()

    def test_retired_replica_drains_assigned_work(self, rich_diurnal):
        """Requests assigned before retirement still complete — no
        assignment points at a replica past its retirement instant."""
        scale = AutoscaleConfig(min_replicas=1, max_replicas=3,
                                target_qps_per_replica=TARGET)
        reqs = rich_diurnal.requests(8000.0)
        assign, state = assign_replicas(reqs, scale, 8000.0)
        assert state.retired  # the trace does retire replicas
        for req, rep in zip(reqs, assign):
            if rep in state.retired:
                assert req.arrival <= state.retired[rep]

    def test_degenerate_range_never_acts(self, system, rich_diurnal):
        report = autoscaled_serve(
            system, rich_diurnal, 8000.0,
            scale=AutoscaleConfig(min_replicas=1, max_replicas=1),
        )
        auto = report.control["autoscale"]
        assert auto["actions"] == []
        assert auto["final_replicas"] == 1


class TestDeterminism:
    def test_assignment_is_pure(self, rich_diurnal):
        scale = AutoscaleConfig(min_replicas=1, max_replicas=3,
                                target_qps_per_replica=TARGET)
        reqs = rich_diurnal.requests(8000.0)
        a1, s1 = assign_replicas(reqs, scale, 8000.0)
        a2, s2 = assign_replicas(reqs, scale, 8000.0)
        assert a1 == a2
        assert s1.summary() == s2.summary()

    def test_autoscaled_serve_replays_identically(
            self, system, rich_diurnal, scaled):
        scale = AutoscaleConfig(min_replicas=1, max_replicas=3,
                                target_qps_per_replica=TARGET)
        again = autoscaled_serve(system, rich_diurnal, 8000.0, scale=scale,
                                 config=ServeConfig(check_invariants=True))
        assert digest(again.to_dict()) == digest(scaled.to_dict())

    def test_default_target_is_qps_over_max(self, rich_diurnal):
        _, state = assign_replicas(
            rich_diurnal.requests(8000.0),
            AutoscaleConfig(max_replicas=4), 8000.0,
        )
        assert state.target == pytest.approx(2000.0)


class TestControllerComposition:
    def test_per_replica_tuner_logs_surface(self, system, rich_diurnal):
        """Autoscaling + controller: each replica carries its own tuner
        summary under control['replicas']."""
        scale = AutoscaleConfig(min_replicas=1, max_replicas=3,
                                target_qps_per_replica=TARGET)
        report = autoscaled_serve(
            system, rich_diurnal, 8000.0, scale=scale,
            config=ServeConfig(slo_s=2e-3, controller=ControllerConfig()),
        )
        replicas = report.control["replicas"]
        assert len(replicas) == report.control["autoscale"]["max_replicas_used"]
        for ctl in replicas:
            assert set(ctl) >= {"actions", "action_counts", "final"}
