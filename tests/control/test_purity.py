"""Per-point purity: no state leaks between runs or sweep points.

The control plane retunes live batcher knobs and the dynamic cache
mutates admission state mid-run, so the sweep driver must reset both
between points — a point's report may depend only on its own spec,
never on which points ran before it in the same process.
"""

import pytest

from repro.cluster import RouterConfig, serve_replicated
from repro.control import ControllerConfig, control_cell
from repro.core import RunConfig, build_system
from repro.serve import ServeConfig, qps_sweep
from repro.serve.sweep import serve_once

from tests.control.conftest import CFG, TIGHT_SLO_S, digest


@pytest.fixture(scope="module")
def dynamic_system():
    cfg = RunConfig(dataset="tiny", num_gpus=2, hidden_dim=16,
                    batch_size=8, fanout=(5, 3), seed=3,
                    dynamic_cache=True)
    return build_system("DSP", cfg)


def test_controlled_serve_once_is_repeatable(system, diurnal):
    cfg = ServeConfig(slo_s=TIGHT_SLO_S, controller=ControllerConfig())
    runs = [serve_once(system, diurnal, 3000.0, cfg) for _ in range(2)]
    assert digest(runs[0].to_dict()) == digest(runs[1].to_dict())


def test_control_cell_is_repeatable():
    kwargs = dict(requests=48, qps=3000.0,
                  serve_config=ServeConfig(slo_s=TIGHT_SLO_S))
    a = control_cell("DSP", CFG, "straggler", ControllerConfig(), **kwargs)
    b = control_cell("DSP", CFG, "straggler", ControllerConfig(), **kwargs)
    assert a == b


def test_sweep_points_independent_of_order(system, diurnal):
    """Each controlled sweep point matches the same point served alone
    and served after a different prefix — the controller's retuning of
    one point must not leak into the next."""
    cfg = ServeConfig(slo_s=TIGHT_SLO_S, controller=ControllerConfig())
    full = qps_sweep(system, diurnal, [1000.0, 2000.0, 3000.0], cfg)
    alone = serve_once(system, diurnal, 3000.0, cfg)
    suffix = qps_sweep(system, diurnal, [2000.0, 3000.0], cfg)
    at = {p.qps: digest(p.report.to_dict()) for p in full}
    assert at[3000.0] == digest(alone.to_dict())
    assert at[3000.0] == digest(suffix[1].report.to_dict())
    assert at[2000.0] == digest(suffix[0].report.to_dict())


def test_dynamic_cache_serve_is_repeatable(dynamic_system, diurnal):
    """The dynamic cache's promotion state must be reset per point:
    back-to-back controlled runs on the same system are identical."""
    cfg = ServeConfig(slo_s=TIGHT_SLO_S, controller=ControllerConfig())
    a = serve_once(dynamic_system, diurnal, 3000.0, cfg)
    b = serve_once(dynamic_system, diurnal, 3000.0, cfg)
    assert digest(a.to_dict()) == digest(b.to_dict())


def test_replicated_serve_is_repeatable_on_dynamic_system(
        dynamic_system, diurnal):
    router = RouterConfig(num_replicas=2, policy="affinity", seed=3)
    cfg = ServeConfig(slo_s=TIGHT_SLO_S, controller=ControllerConfig())
    a = serve_replicated(dynamic_system, diurnal, 8000.0, router=router,
                         config=cfg)
    b = serve_replicated(dynamic_system, diurnal, 8000.0, router=router,
                         config=cfg)
    assert digest(a.to_dict()) == digest(b.to_dict())
