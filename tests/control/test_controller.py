"""Unit and pinned-regime tests for the SLO-burn AIMD tuner."""

import pytest

from repro.control import ControllerConfig
from repro.control.actions import (
    ACTION_KINDS,
    ControlAction,
    action_from_dict,
)
from repro.serve import ServeConfig
from repro.serve.sweep import serve_once
from repro.utils import ConfigError

from tests.control.conftest import TIGHT_SLO_S


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"interval_s": 0.0},
        {"interval_s": -1.0},
        {"target": 0.0},
        {"target": 1.0},
        {"target": 1.5},
        {"low_burn": 1.0, "high_burn": 1.0},
        {"low_burn": 2.0, "high_burn": 1.0},
        {"low_burn": -0.1},
        {"min_timeout_frac": 0.0},
        {"min_timeout_frac": 1.5},
        {"max_batch_factor": 0},
        {"timeout_decrease": 0.0},
        {"timeout_decrease": 1.0},
        {"batch_increase": 1.0},
        {"recover_frac": 0.0},
        {"recover_after": 0},
        {"full_batch_frac": 0.0},
        {"max_pressure": -1},
        {"pressure_after": 0},
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ControllerConfig(**kwargs)

    def test_defaults_valid(self):
        cfg = ControllerConfig()
        assert cfg.low_burn < cfg.high_burn
        assert cfg.interval_s is None  # derived from the registry


class TestActions:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            ControlAction(t=0.0, kind="warp-speed", knob="batch_max",
                          before=1, after=2, signal=0.0)

    def test_roundtrip(self):
        a = ControlAction(t=0.25, kind="max-wait-down", knob="timeout_s",
                          before=2e-3, after=1e-3, signal=1.7)
        assert action_from_dict(a.to_dict()) == a

    def test_kind_registry_is_closed(self):
        assert set(ACTION_KINDS) == {
            "batch-max-up", "batch-max-recover", "max-wait-down",
            "max-wait-recover", "pressure-up", "pressure-down",
            "scale-up", "scale-down",
        }


class TestPinnedRegime:
    """The pinned diurnal regime: SLO at the pipeline's latency floor.

    With the SLO equal to the 2ms batch max-wait, lone requests land
    exactly on the line and the static config burns budget; the
    controller's max-wait cuts are the only lever, and their effect is
    pinned here to the figure observed when the controller landed.
    """

    @pytest.fixture(scope="class")
    def passes(self, system, diurnal):
        static = serve_once(system, diurnal, 3000.0,
                            ServeConfig(slo_s=TIGHT_SLO_S), metrics=True)
        ctl = serve_once(
            system, diurnal, 3000.0,
            ServeConfig(slo_s=TIGHT_SLO_S, controller=ControllerConfig()),
            metrics=True,
        )
        return static, ctl

    def test_controller_strictly_improves_slo_minutes(self, passes):
        static, ctl = passes
        s = static.metrics["slo"]["slo_minutes_violated"]
        c = ctl.metrics["slo"]["slo_minutes_violated"]
        assert s > 0, "regime must make the static config burn budget"
        assert c < s

    def test_pinned_action_counts(self, passes):
        _, ctl = passes
        assert ctl.control["action_counts"] == {
            "max-wait-down": 2, "max-wait-recover": 4,
        }

    def test_recovery_returns_to_baseline(self, passes):
        """After the load trough, recovery steps walk the max-wait all
        the way back to the static baseline (quiescence at baseline)."""
        _, ctl = passes
        final = ctl.control["final"]
        base = ctl.control["baseline"]
        assert final["timeout_ms"] == base["timeout_ms"]
        assert final["batch_max"] == base["batch_max"]
        assert final["pressure"] == 0

    def test_knob_bounds_respected(self, passes):
        """No action ever takes a knob past its configured bound."""
        _, ctl = passes
        cfg = ControllerConfig()
        base_timeout = ctl.control["baseline"]["timeout_ms"]
        base_batch = ctl.control["baseline"]["batch_max"]
        for a in ctl.control["actions"]:
            if a["knob"] == "timeout_s":
                assert a["after"] * 1e3 >= (
                    cfg.min_timeout_frac * base_timeout - 1e-12)
                assert a["after"] * 1e3 <= base_timeout + 1e-12
            else:
                assert a["after"] <= cfg.max_batch_factor * base_batch
                assert a["after"] >= base_batch

    def test_actions_are_time_ordered(self, passes):
        _, ctl = passes
        ts = [a["t_ms"] for a in ctl.control["actions"]]
        assert ts == sorted(ts)
        assert all(a["kind"] in ACTION_KINDS
                   for a in ctl.control["actions"])


class TestBatchGrowthRegime:
    def test_full_batches_grow_batch_max(self, system, nodes):
        """Throughput-bound intervals (batches closing full) double the
        batch cap instead of cutting the wait."""
        from repro.serve import WorkloadConfig, make_workload

        w = make_workload(WorkloadConfig(num_requests=1024, seed=7), nodes)
        cfg = ServeConfig(slo_s=1.5e-3, batch_max=4, queue_capacity=256,
                          controller=ControllerConfig())
        report = serve_once(system, w, 8000.0, cfg, metrics=True)
        counts = report.control["action_counts"]
        assert counts.get("batch-max-up", 0) >= 1
        ups = [a for a in report.control["actions"]
               if a["kind"] == "batch-max-up"]
        # multiplicative increase, capped at max_batch_factor x baseline
        for a in ups:
            assert a["after"] == min(a["before"] * 2, 4 * 8)


class TestQuiescence:
    def test_no_actions_when_slo_is_healthy(self, system, poisson):
        """At the default 50ms SLO nothing violates, the burn rate
        stays pinned at zero, and the tuner never acts."""
        cfg = ServeConfig(controller=ControllerConfig())
        report = serve_once(system, poisson, 2000.0, cfg)
        assert report.control["action_counts"] == {}
        assert report.control["ticks"] >= 1
        assert report.control["final"]["batch_max"] == 16

    def test_summary_shape(self, system, poisson):
        report = serve_once(
            system, poisson, 2000.0,
            ServeConfig(controller=ControllerConfig()),
        )
        ctl = report.control
        assert set(ctl) == {"interval_ms", "ticks", "actions",
                            "action_counts", "final", "baseline"}
        assert ctl["interval_ms"] == pytest.approx(4 * 50.0)  # 4 windows
