"""Defaults-off bit-identity and cross-worker conformance.

The control plane's hardest contract: with no controller, tenancy or
autoscaler configured, serving output is **bit-identical** to the code
before this subsystem existed.  The digests below were computed at the
pre-control HEAD and hard-coded; if one of these tests fails, a
default-path behaviour change leaked in.

The second half pins the controlled paths' determinism: the same seed
and workload replay to the identical action log, and every fan-out is
byte-identical across ``--workers``.
"""

import numpy as np

from repro.cluster import RouterConfig, serve_replicated
from repro.control import (
    AutoscaleConfig,
    ControllerConfig,
    autoscaled_qps_sweep,
    control_matrix,
)
from repro.core import build_system
from repro.serve import ServeConfig, WorkloadConfig, make_workload, qps_sweep
from repro.serve.sweep import serve_once

from tests.control.conftest import CFG, TIGHT_SLO_S, digest

# -- digests computed at the pre-control HEAD --------------------------
HEAD_SERVE_ONCE = (
    "d6c72b206a5b920590fddb925b217637817910905b9df1b2c2ba52907d45ff97"
)
HEAD_SERVE_ONCE_METRICS = (
    "47601fc656354d17cc06b08c0b232209cd4b6b78d8c1af6c1d74ff71f943ece7"
)
HEAD_QPS_SWEEP = (
    "be55cb3d6b05822afd6ff78e261d2380027ec9757d85271b47d9bb6519407bff"
)
HEAD_REPLICATED = (
    "8e94f4c4b5a51362005c6767f666a349611f9579c080437a21e3092cbb7f561c"
)
HEAD_DGL_UVA = (
    "9e99269a0cfdb991efb4960f2892e18a58f54109f9b588b4077c53d830d5320b"
)
HEAD_DIURNAL = (
    "856e7cbf88e81c3fcfff2e93cec0c2bda047a71238b6b9723ebd7a7a6b5d08a4"
)


class TestDefaultsOffBitIdentity:
    def test_serve_once_matches_head(self, system, poisson):
        report = serve_once(system, poisson, 2000.0, ServeConfig())
        assert digest(report.to_dict()) == HEAD_SERVE_ONCE

    def test_serve_once_metrics_matches_head(self, system, poisson):
        report = serve_once(system, poisson, 2000.0, ServeConfig(),
                            metrics=True)
        assert digest(report.to_dict()) == HEAD_SERVE_ONCE_METRICS

    def test_qps_sweep_matches_head(self, system, poisson):
        pts = qps_sweep(system, poisson, [500.0, 2000.0], ServeConfig())
        assert digest([p.report.to_dict() for p in pts]) == HEAD_QPS_SWEEP

    def test_serve_replicated_matches_head(self, system, poisson):
        report = serve_replicated(
            system, poisson, 8000.0,
            router=RouterConfig(num_replicas=2, policy="affinity", seed=3),
        )
        assert digest(report.to_dict()) == HEAD_REPLICATED

    def test_other_system_matches_head(self, poisson):
        system = build_system("DGL-UVA", CFG)
        report = serve_once(system, poisson, 2000.0, ServeConfig())
        assert digest(report.to_dict()) == HEAD_DGL_UVA

    def test_diurnal_workload_matches_head(self, system, nodes):
        w = make_workload(
            WorkloadConfig(num_requests=96, arrival="diurnal", seed=5),
            nodes,
        )
        report = serve_once(system, w, 4000.0, ServeConfig())
        assert digest(report.to_dict()) == HEAD_DIURNAL

    def test_default_report_has_no_control_keys(self, system, poisson):
        """Presence-gated JSON: the new keys only exist when the
        feature ran, so default payloads carry no trace of it."""
        payload = serve_once(system, poisson, 2000.0,
                             ServeConfig()).to_dict()
        assert "control" not in payload
        assert "tenants" not in payload


class TestDeterministicReplay:
    def test_action_log_replays_identically(self, system, diurnal):
        """Same seed + workload -> byte-identical action log."""
        cfg = ServeConfig(slo_s=TIGHT_SLO_S, controller=ControllerConfig())
        a = serve_once(system, diurnal, 3000.0, cfg, metrics=True)
        b = serve_once(system, diurnal, 3000.0, cfg, metrics=True)
        assert a.control["actions"] == b.control["actions"]
        assert a.control["actions"]  # the regime actually acts
        assert digest(a.to_dict()) == digest(b.to_dict())

    def test_controlled_report_replays_identically_on_fresh_system(
            self, system, diurnal):
        cfg = ServeConfig(slo_s=TIGHT_SLO_S, controller=ControllerConfig())
        a = serve_once(system, diurnal, 3000.0, cfg)
        b = serve_once(build_system("DSP", CFG), diurnal, 3000.0, cfg)
        assert digest(a.to_dict()) == digest(b.to_dict())


class TestWorkerByteIdentity:
    def test_controlled_sweep_identical_across_workers(
            self, system, diurnal):
        cfg = ServeConfig(slo_s=TIGHT_SLO_S, controller=ControllerConfig())
        serial = qps_sweep(system, diurnal, [2000.0, 3000.0], cfg,
                           workers=1)
        fanned = qps_sweep(system, diurnal, [2000.0, 3000.0], cfg,
                           workers=2)
        assert (digest([p.report.to_dict() for p in serial])
                == digest([p.report.to_dict() for p in fanned]))

    def test_autoscaled_sweep_identical_across_workers(
            self, system, diurnal):
        scale = AutoscaleConfig(min_replicas=1, max_replicas=3,
                                target_qps_per_replica=6000.0)
        serial = autoscaled_qps_sweep(system, diurnal, [4000.0, 8000.0],
                                      scale=scale, workers=1)
        fanned = autoscaled_qps_sweep(system, diurnal, [4000.0, 8000.0],
                                      scale=scale, workers=2)
        assert (digest([p.report.to_dict() for p in serial])
                == digest([p.report.to_dict() for p in fanned]))

    def test_replicated_controlled_serve_identical_across_processes(
            self, system, diurnal):
        """Replicated serving under the controller is a pure function
        of its spec: a fresh-process rebuild reproduces it exactly."""
        cfg = ServeConfig(slo_s=TIGHT_SLO_S, controller=ControllerConfig())
        router = RouterConfig(num_replicas=2, policy="affinity", seed=3)
        a = serve_replicated(system, diurnal, 8000.0, router=router,
                             config=cfg)
        b = serve_replicated(build_system("DSP", CFG), diurnal, 8000.0,
                             router=router, config=cfg)
        assert digest(a.to_dict()) == digest(b.to_dict())
        assert len(a.control["replicas"]) == 2

    def test_control_matrix_identical_across_workers(self):
        wls = {"diurnal": WorkloadConfig(num_requests=64,
                                         arrival="diurnal", seed=5)}
        kwargs = dict(
            scenarios=("none", "cache-peer-loss"),
            workload_configs=wls,
            qps=3000.0,
            serve_config=ServeConfig(slo_s=TIGHT_SLO_S),
        )
        serial = control_matrix("DSP", CFG, ControllerConfig(),
                                workers=1, **kwargs)
        fanned = control_matrix("DSP", CFG, ControllerConfig(),
                                workers=2, **kwargs)
        assert digest(serial) == digest(fanned)
