"""Property tests: quiescence, quota safety, drain safety, fault fuzz.

Each property runs a real (small) simulation per example, so example
counts are deliberately low — these are randomized smoke sweeps over
the controller's safety envelope, not statistical estimates.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos.faults import FaultPlan
from repro.chaos.runtime import ChaosConfig
from repro.chaos.scenarios import _serve_pass
from repro.control import (
    AutoscaleConfig,
    ControllerConfig,
    TenancyConfig,
    TenantSpec,
    assign_replicas,
)
from repro.serve import ServeConfig, WorkloadConfig, make_workload
from repro.serve.sweep import serve_once

from tests.control.conftest import CFG

SIM_SETTINGS = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@SIM_SETTINGS
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_tuner_quiesces_under_stationary_poisson(system, nodes, seed):
    """A healthy SLO (the 50ms default, far above the 2ms latency
    floor) under any stationary Poisson stream: the tuner never acts,
    and the served stream is identical to the uncontrolled one."""
    w = make_workload(WorkloadConfig(num_requests=48, seed=seed), nodes)
    ctl = serve_once(system, w, 2000.0,
                     ServeConfig(controller=ControllerConfig()))
    assert ctl.control["action_counts"] == {}
    static = serve_once(system, w, 2000.0, ServeConfig())
    ctl_payload = ctl.to_dict()
    ctl_payload.pop("control")
    assert ctl_payload == static.to_dict()


@SIM_SETTINGS
@given(seed=st.integers(min_value=0, max_value=10_000),
       quota=st.floats(min_value=0.02, max_value=0.5))
def test_quotas_never_exceeded(system, nodes, seed, quota):
    """Any quota split under a bursty stream: the strict invariant
    checker raises if a tenant's pending count ever passes its slots,
    and per-tenant accounting always conserves the offered stream."""
    tenancy = TenancyConfig(
        tenants=(TenantSpec("a", quota=quota),
                 TenantSpec("b", priority=1)),
        seed=seed,
    )
    w = make_workload(
        WorkloadConfig(num_requests=96, arrival="bursty", seed=seed),
        nodes,
    )
    report = serve_once(
        system, w, 6000.0,
        ServeConfig(tenancy=tenancy, check_invariants=True),
    )
    tenants = report.tenants
    assert sum(t["offered"] for t in tenants.values()) == 96
    for t in tenants.values():
        assert t["offered"] == t["completed"] + t["shed"]


@SIM_SETTINGS
@given(seed=st.integers(min_value=0, max_value=10_000),
       target=st.floats(min_value=2000.0, max_value=12_000.0))
def test_scale_down_never_drops_in_flight(nodes, seed, target):
    """Whatever the scaler does, every request is assigned to a
    replica that was active at its arrival — retirement only ever
    drains."""
    w = make_workload(
        WorkloadConfig(num_requests=192, arrival="diurnal", seed=seed),
        nodes,
    )
    reqs = w.requests(8000.0)
    scale = AutoscaleConfig(min_replicas=1, max_replicas=3,
                            target_qps_per_replica=target)
    assign, state = assign_replicas(reqs, scale, 8000.0)
    assert len(assign) == len(reqs)
    for req, rep in zip(reqs, assign):
        if rep in state.retired:
            assert req.arrival <= state.retired[rep]
        assert rep not in state.warming or \
            state.warming[rep] <= req.arrival


@SIM_SETTINGS
@given(plan_seed=st.integers(min_value=0, max_value=10_000))
def test_random_fault_plans_conserve_requests(nodes, plan_seed):
    """Fuzz the full stack: a random bounded FaultPlan under tenancy +
    controller still terminates, conserves the stream, and keeps the
    strict invariant oracle quiet."""
    plan = FaultPlan.random(plan_seed, num_gpus=CFG.total_gpus,
                            horizon=0.05, max_events=3)
    w = make_workload(WorkloadConfig(num_requests=64, seed=1), nodes)
    cfg = ServeConfig(
        slo_s=2e-3,
        controller=ControllerConfig(),
        tenancy=TenancyConfig.uniform(2, seed=plan_seed),
    )
    report, _, slo, _ = _serve_pass(
        "DSP", CFG, cfg, w, 3000.0, ChaosConfig(), plan
    )
    assert report.completed + report.shed == 64
    assert slo["slo_minutes_violated"] >= 0.0


@SIM_SETTINGS
@given(seed=st.integers(min_value=0, max_value=10_000),
       n=st.integers(min_value=1, max_value=5))
def test_tenant_labels_split_independent(seed, n):
    """Labelling is pure in (seed, rid): any sub-stream or reordering
    of a stream carries the same labels as the whole."""
    from repro.serve.workload import Request

    t = TenancyConfig.uniform(n, seed=seed)
    reqs = [Request(rid=i, node=i, arrival=i * 1e-3) for i in range(48)]
    whole = {r.rid: (r.tenant, r.priority) for r in t.assign(reqs)}
    half = {r.rid: (r.tenant, r.priority) for r in t.assign(reqs[24:])}
    rev = {r.rid: (r.tenant, r.priority)
           for r in t.assign(list(reversed(reqs)))}
    assert all(whole[rid] == lab for rid, lab in half.items())
    assert rev == whole


@SIM_SETTINGS
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_controlled_serve_is_pure(system, nodes, seed):
    """Same inputs, same everything: the controlled path replays to an
    identical report (including the action log) on every run."""
    w = make_workload(
        WorkloadConfig(num_requests=64, arrival="diurnal", seed=seed),
        nodes,
    )
    cfg = ServeConfig(slo_s=2e-3, controller=ControllerConfig())
    a = serve_once(system, w, 3000.0, cfg)
    b = serve_once(system, w, 3000.0, cfg)
    assert a.to_dict() == b.to_dict()
