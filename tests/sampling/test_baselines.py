"""Tests for the UVA / CPU / Pull-Data sampler baselines."""

import numpy as np
import pytest

from repro.graph import dcsbm_graph, metis_partition, renumber_by_partition
from repro.sampling import (
    CollectiveSampler,
    CPUSampler,
    CSPConfig,
    PullDataSampler,
    UVASampler,
)
from repro.sampling.ops import AllToAll, HostWork, LocalKernel, PCIeCopy, UVAGather
from repro.utils import ConfigError


@pytest.fixture(scope="module")
def setting():
    graph = dcsbm_graph(600, 12_000, num_communities=4, rng=7)
    rng = np.random.default_rng(1)
    wgraph = graph.with_node_weights(rng.random(graph.num_nodes).astype(np.float32))
    part = metis_partition(wgraph, 4, rng=0)
    rgraph, _, nb = renumber_by_partition(wgraph, part)
    seeds = []
    srng = np.random.default_rng(3)
    for g in range(4):
        lo, hi = nb.part_offsets[g], nb.part_offsets[g + 1]
        seeds.append(srng.choice(np.arange(lo, hi), size=20, replace=False))
    return rgraph, nb, seeds


CFG = CSPConfig(fanout=(5, 3))


class TestUVASampler:
    def test_functional_output_valid(self, setting):
        rgraph, nb, seeds = setting
        s = UVASampler(rgraph, 4, seed=0)
        samples, trace, stats = s.sample(seeds, CFG)
        for g, smp in enumerate(samples):
            assert np.array_equal(smp.blocks[0].dst_nodes, seeds[g])
            b = smp.blocks[0]
            for i, v in enumerate(b.dst_nodes):
                assert set(b.src_of(i)) <= set(rgraph.neighbors(int(v)))

    def test_zero_locality(self, setting):
        rgraph, nb, seeds = setting
        _, _, stats = UVASampler(rgraph, 4, seed=0).sample(seeds, CFG)
        assert stats.locality == 0.0

    def test_trace_is_uva_plus_kernels(self, setting):
        rgraph, nb, seeds = setting
        _, trace, _ = UVASampler(rgraph, 4, seed=0).sample(seeds, CFG)
        kinds = {type(op) for op in trace}
        assert kinds == {UVAGather, LocalKernel}

    def test_biased_reads_whole_adjacency(self, setting):
        rgraph, nb, seeds = setting
        s = UVASampler(rgraph, 4, seed=0)
        _, t_unbiased, _ = s.sample(seeds, CFG)
        _, t_biased, _ = UVASampler(rgraph, 4, seed=0).sample(
            seeds, CSPConfig(fanout=(5, 3), biased=True)
        )
        assert t_biased.uva_payload_bytes() > 2 * t_unbiased.uva_payload_bytes()

    def test_wire_bytes_amplified(self, setting):
        rgraph, nb, seeds = setting
        _, trace, _ = UVASampler(rgraph, 4, seed=0).sample(seeds, CFG)
        assert trace.uva_wire_bytes() == pytest.approx(
            trace.uva_payload_bytes() * 50 / 8
        )

    def test_rejects_layerwise(self, setting):
        rgraph, nb, seeds = setting
        with pytest.raises(ConfigError):
            UVASampler(rgraph, 4).sample(seeds, CSPConfig(fanout=(5,), scheme="layer"))


class TestCPUSampler:
    def test_functional_output_valid(self, setting):
        rgraph, nb, seeds = setting
        samples, trace, _ = CPUSampler(rgraph, 4, seed=0).sample(seeds, CFG)
        b = samples[0].blocks[0]
        for i, v in enumerate(b.dst_nodes):
            assert set(b.src_of(i)) <= set(rgraph.neighbors(int(v)))

    def test_trace_is_hostwork_plus_copy(self, setting):
        rgraph, nb, seeds = setting
        _, trace, _ = CPUSampler(rgraph, 4, seed=0).sample(seeds, CFG)
        kinds = [type(op) for op in trace]
        assert kinds.count(HostWork) == 2  # one per layer
        assert kinds[-1] is PCIeCopy

    def test_copy_bytes_match_sample_size(self, setting):
        rgraph, nb, seeds = setting
        samples, trace, _ = CPUSampler(rgraph, 4, seed=0).sample(seeds, CFG)
        copy = next(op for op in trace if isinstance(op, PCIeCopy))
        assert copy.nbytes.sum() == pytest.approx(sum(s.nbytes for s in samples))


class TestPullDataSampler:
    def test_functional_output_valid(self, setting):
        rgraph, nb, seeds = setting
        s = PullDataSampler.from_partitioned(rgraph, nb.part_offsets, seed=0)
        samples, trace, stats = s.sample(seeds, CFG)
        for g, smp in enumerate(samples):
            b = smp.blocks[0]
            assert np.array_equal(b.dst_nodes, seeds[g])
            for i, v in enumerate(b.dst_nodes):
                assert set(b.src_of(i)) <= set(rgraph.neighbors(int(v)))

    def test_pull_moves_more_bytes_than_push(self, setting):
        """The Fig 11 / Fig 1 claim: pulling adjacency lists loses."""
        rgraph, nb, seeds = setting
        push = CollectiveSampler.from_partitioned(rgraph, nb.part_offsets, seed=0)
        pull = PullDataSampler.from_partitioned(rgraph, nb.part_offsets, seed=0)
        cfg = CSPConfig(fanout=(5, 3), biased=True)
        _, push_trace, _ = push.sample(seeds, cfg)
        _, pull_trace, _ = pull.sample(seeds, cfg)
        assert (
            pull_trace.nvlink_payload_bytes()
            > 1.5 * push_trace.nvlink_payload_bytes()
        )

    def test_biased_doubles_pull_traffic(self, setting):
        rgraph, nb, seeds = setting
        pull = PullDataSampler.from_partitioned(rgraph, nb.part_offsets, seed=0)
        _, t1, _ = pull.sample(seeds, CSPConfig(fanout=(5,)))
        pull2 = PullDataSampler.from_partitioned(rgraph, nb.part_offsets, seed=0)
        _, t2, _ = pull2.sample(seeds, CSPConfig(fanout=(5,), biased=True))
        resp1 = sum(op.matrix.sum() for op in t1
                    if isinstance(op, AllToAll) and "resp" in op.label)
        resp2 = sum(op.matrix.sum() for op in t2
                    if isinstance(op, AllToAll) and "resp" in op.label)
        assert resp2 == pytest.approx(2 * resp1)

    def test_same_locality_as_csp(self, setting):
        rgraph, nb, seeds = setting
        push = CollectiveSampler.from_partitioned(rgraph, nb.part_offsets, seed=0)
        pull = PullDataSampler.from_partitioned(rgraph, nb.part_offsets, seed=0)
        _, _, s_push = push.sample(seeds, CFG)
        _, _, s_pull = pull.sample(seeds, CFG)
        assert s_push.tasks_total == s_pull.tasks_total
        assert s_push.local_tasks == s_pull.local_tasks
