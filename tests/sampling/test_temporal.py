"""Tests for temporal graph sampling."""

import numpy as np
import pytest

from repro.graph import CSRGraph, dcsbm_graph, metis_partition, renumber_by_partition
from repro.sampling import TemporalCollectiveSampler, temporal_sample_neighbors
from repro.sampling.local import GraphPatch
from repro.utils import ConfigError, ReproError
from repro.utils.rng import make_rng


@pytest.fixture
def line_patch():
    """Node 3 has in-neighbours 0,1,2 over edges with times 1.0, 2.0, 3.0."""
    g = CSRGraph.from_edges(
        np.array([0, 1, 2]), np.array([3, 3, 3]), num_nodes=4
    )
    times = np.zeros(g.num_edges)
    # adjacency of node 3 holds [0,1,2] in some order; set times by src id
    patch = GraphPatch.full(g)
    for i, src in enumerate(patch.indices):
        times[i] = float(src) + 1.0
    return patch, times


class TestTemporalKernel:
    def test_cutoff_excludes_newer_edges(self, line_patch):
        patch, times = line_patch
        src, st, counts = temporal_sample_neighbors(
            patch, times, np.array([3]), np.array([2.5]), fanout=10, rng=0
        )
        assert counts.tolist() == [2]
        assert sorted(src.tolist()) == [0, 1]  # edge times 1.0, 2.0 < 2.5
        assert (st < 2.5).all()

    def test_no_eligible_edges(self, line_patch):
        patch, times = line_patch
        src, st, counts = temporal_sample_neighbors(
            patch, times, np.array([3]), np.array([0.5]), fanout=5, rng=0
        )
        assert counts.tolist() == [0]
        assert len(src) == 0

    def test_fanout_caps_selection(self, line_patch):
        patch, times = line_patch
        src, _, counts = temporal_sample_neighbors(
            patch, times, np.array([3]), np.array([10.0]), fanout=2, rng=0
        )
        assert counts.tolist() == [2]
        assert len(np.unique(src)) == 2  # without replacement

    def test_returned_times_match_edges(self, line_patch):
        patch, times = line_patch
        src, st, _ = temporal_sample_neighbors(
            patch, times, np.array([3]), np.array([10.0]), fanout=3, rng=1
        )
        for u, t in zip(src, st):
            assert t == float(u) + 1.0

    def test_recency_bias_prefers_fresh_edges(self, line_patch):
        patch, times = line_patch
        hits = 0
        for seed in range(300):
            src, _, _ = temporal_sample_neighbors(
                patch, times, np.array([3]), np.array([3.5]), fanout=1,
                rng=seed, recency_bias=True,
            )
            hits += int(src[0] == 2)  # newest edge (time 3.0, age 0.5)
        assert hits > 125  # clearly above the uniform 100

    def test_validation(self, line_patch):
        patch, times = line_patch
        with pytest.raises(ReproError):
            temporal_sample_neighbors(
                patch, times[:-1], np.array([3]), np.array([1.0]), 2
            )
        with pytest.raises(ReproError):
            temporal_sample_neighbors(
                patch, times, np.array([3]), np.array([1.0, 2.0]), 2
            )
        with pytest.raises(ReproError):
            temporal_sample_neighbors(
                patch, times, np.array([3]), np.array([1.0]), -1
            )

    def test_empty_tasks(self, line_patch):
        patch, times = line_patch
        src, st, counts = temporal_sample_neighbors(
            patch, times, np.array([], dtype=np.int64),
            np.array([]), fanout=3,
        )
        assert len(src) == len(st) == len(counts) == 0


class TestTemporalCSP:
    @pytest.fixture(scope="class")
    def setting(self):
        graph = dcsbm_graph(400, 8000, num_communities=4, rng=3)
        part = metis_partition(graph, 4, rng=0)
        rgraph, _, nb = renumber_by_partition(graph, part)
        rng = make_rng(5)
        times = rng.random(rgraph.num_edges)
        sampler = TemporalCollectiveSampler.from_partitioned_times(
            rgraph, nb.part_offsets, times, seed=0
        )
        return rgraph, times, nb, sampler

    def test_monotone_causality(self, setting):
        """Every sampled edge must be older than its frontier cut-off;
        cut-offs only move backwards along the walk into the past."""
        rgraph, times, nb, sampler = setting
        rng = make_rng(7)
        seeds, cuts = [], []
        for g in range(4):
            lo, hi = nb.part_offsets[g], nb.part_offsets[g + 1]
            seeds.append(rng.integers(lo, hi, size=10))
            cuts.append(np.full(10, 0.9))
        samples, trace, stats = sampler.sample_temporal(seeds, cuts, (4, 3))
        assert stats.tasks_total > 0
        for g, s in enumerate(samples):
            b0 = s.blocks[0]
            for i, v in enumerate(b0.dst_nodes):
                nbrs = set(rgraph.neighbors(int(v)).tolist())
                assert set(b0.src_of(i).tolist()) <= nbrs

    def test_zero_cutoff_samples_nothing(self, setting):
        _, _, nb, sampler = setting
        seeds = [np.array([int(nb.part_offsets[g])]) for g in range(4)]
        cuts = [np.zeros(1) for _ in range(4)]
        samples, _, stats = sampler.sample_temporal(seeds, cuts, (5,))
        assert stats.sampled_total == 0

    def test_trace_carries_timestamps(self, setting):
        """Shuffle traffic includes the 8-byte cut-off per task."""
        _, _, nb, sampler = setting
        rng = make_rng(9)
        seeds, cuts = [], []
        for g in range(4):
            lo, hi = nb.part_offsets[g], nb.part_offsets[g + 1]
            seeds.append(rng.integers(0, rgraph_n := int(nb.num_nodes), size=20))
            cuts.append(np.ones(20))
        samples, trace, stats = sampler.sample_temporal(seeds, cuts, (3,))
        shuffle = next(op for op in trace if op.label == "t-shuffle-L0")
        remote = stats.tasks_total - stats.local_tasks
        assert shuffle.matrix.sum() == pytest.approx(remote * 16)

    def test_validation(self, setting):
        _, _, nb, sampler = setting
        with pytest.raises(ConfigError):
            sampler.sample_temporal([np.array([0])], [np.array([1.0])], (2,))
        with pytest.raises(ConfigError):
            sampler.sample_temporal(
                [np.array([0])] * 4, [np.array([1.0, 2.0])] * 4, (2,)
            )

    def test_mismatched_times_rejected(self, setting):
        rgraph, times, nb, _ = setting
        with pytest.raises(ConfigError):
            TemporalCollectiveSampler.from_partitioned_times(
                rgraph, nb.part_offsets, times[:-5]
            )
