"""Tests for Block / MiniBatchSample structures."""

import numpy as np
import pytest

from repro.sampling.frontier import Block, MiniBatchSample, next_frontier
from repro.utils import ReproError


def block(dst, src, counts):
    offsets = np.concatenate([[0], np.cumsum(counts)])
    return Block(np.asarray(dst), np.asarray(src), offsets)


class TestBlock:
    def test_src_of(self):
        b = block([5, 7], [1, 2, 3], [2, 1])
        assert b.src_of(0).tolist() == [1, 2]
        assert b.src_of(1).tolist() == [3]
        assert b.num_dst == 2 and b.num_edges == 3

    def test_all_nodes_unique_sorted(self):
        b = block([5, 7], [7, 5, 1], [2, 1])
        assert b.all_nodes.tolist() == [1, 5, 7]

    def test_nbytes_positive(self):
        assert block([1], [2], [1]).nbytes > 0

    def test_offsets_validation(self):
        with pytest.raises(ReproError):
            Block(np.array([1]), np.array([2]), np.array([0, 2]))
        with pytest.raises(ReproError):
            Block(np.array([1]), np.array([2]), np.array([1, 1]))
        with pytest.raises(ReproError):
            Block(np.array([1, 2]), np.array([3]), np.array([0, 1]))
        with pytest.raises(ReproError):
            Block(np.array([1, 2]), np.array([3]), np.array([0, 1, 0]))

    def test_empty_block(self):
        b = block([], [], [])
        assert b.num_dst == 0 and b.num_edges == 0


class TestMiniBatchSample:
    def test_all_nodes_union(self):
        b0 = block([0], [1, 2], [2])
        b1 = block(b0.all_nodes, [3, 4, 5], [1, 1, 1])
        s = MiniBatchSample(seeds=np.array([0]), blocks=(b0, b1))
        assert s.all_nodes.tolist() == [0, 1, 2, 3, 4, 5]
        assert s.num_layers == 2
        assert s.total_sampled_edges == 5

    def test_block0_must_match_seeds(self):
        b0 = block([0], [1], [1])
        with pytest.raises(ReproError):
            MiniBatchSample(seeds=np.array([9]), blocks=(b0,))

    def test_needs_blocks(self):
        with pytest.raises(ReproError):
            MiniBatchSample(seeds=np.array([0]), blocks=())

    def test_next_frontier_is_all_nodes(self):
        b = block([3], [1, 9], [2])
        assert next_frontier(b).tolist() == [1, 3, 9]
