"""Statistical tests: CSP sampling distributions are unchanged by
partitioning — a core correctness property of the shuffle/sample/
reshuffle decomposition."""

import numpy as np
import pytest

from repro.graph import CSRGraph, hash_partition, renumber_by_partition
from repro.sampling import CollectiveSampler, CSPConfig


def star_graph(weights=None):
    """Node 0 has in-neighbours 1..8 (optionally weighted)."""
    src = np.arange(1, 9)
    dst = np.zeros(8, dtype=np.int64)
    w = None if weights is None else np.asarray(weights, dtype=np.float32)
    return CSRGraph.from_edges(src, dst, num_nodes=9, edge_weights=w)


def build(graph, k, seed=0):
    part = hash_partition(graph.num_nodes, k, seed=1)
    rgraph, _, nb = renumber_by_partition(graph, part)
    sampler = CollectiveSampler.from_partitioned(rgraph, nb.part_offsets,
                                                 seed=seed)
    return sampler, nb


def frequencies(sampler, nb, seed_old, cfg, trials):
    """Empirical pick counts (in old ids) for one seed's first hop."""
    seed_new = int(nb.old_to_new[seed_old])
    owner = int(sampler.owner_of(np.array([seed_new]))[0])
    seeds = [np.empty(0, dtype=np.int64) for _ in range(sampler.num_gpus)]
    seeds[owner] = np.full(trials, seed_new, dtype=np.int64)
    samples, _, _ = sampler.sample(seeds, cfg)
    picked = samples[owner].blocks[0].src_nodes
    counts = np.zeros(nb.num_nodes, dtype=np.int64)
    np.add.at(counts, nb.new_to_old[picked], 1)
    return counts


class TestDistributionInvariance:
    def test_uniform_sampling_uniform_across_partitions(self):
        """Every neighbour of the star centre is drawn ~uniformly, no
        matter how many GPUs hold the graph."""
        g = star_graph()
        cfg = CSPConfig(fanout=(1,))
        for k in (1, 3):
            sampler, nb = build(g, k)
            counts = frequencies(sampler, nb, 0, cfg, trials=4000)
            freq = counts[1:9]
            assert freq.sum() == 4000
            expected = 4000 / 8
            # chi-square-ish bound: all cells within 25% of expectation
            assert freq.min() > 0.75 * expected
            assert freq.max() < 1.25 * expected

    def test_biased_sampling_follows_weights_across_partitions(self):
        """Biased CSP respects edge weights identically under 1 or 3
        partitions (§4.2: weights are stored with the edges)."""
        weights = np.array([1, 1, 1, 1, 1, 1, 1, 7], dtype=np.float32)
        g = star_graph(weights)
        cfg = CSPConfig(fanout=(1,), biased=True)
        ratios = []
        for k in (1, 3):
            sampler, nb = build(g, k)
            counts = frequencies(sampler, nb, 0, cfg, trials=6000)
            # the weight-7 edge is (8 -> 0); node 8 should get ~1/2
            heavy = counts[8] / counts[1:9].sum()
            ratios.append(heavy)
            assert heavy == pytest.approx(0.5, abs=0.05)
        assert abs(ratios[0] - ratios[1]) < 0.05

    def test_partitioned_equals_single_gpu_without_replacement(self):
        """fanout >= degree without replacement returns the exact
        neighbourhood regardless of partitioning — determinism check."""
        g = star_graph()
        cfg = CSPConfig(fanout=(8,), replace=False)
        results = []
        for k in (1, 2, 3):
            sampler, nb = build(g, k)
            seed_new = int(nb.old_to_new[0])
            owner = int(sampler.owner_of(np.array([seed_new]))[0])
            seeds = [np.empty(0, dtype=np.int64) for _ in range(k)]
            seeds[owner] = np.array([seed_new])
            samples, _, _ = sampler.sample(seeds, cfg)
            picked = nb.new_to_old[samples[owner].blocks[0].src_nodes]
            results.append(sorted(picked.tolist()))
        assert results[0] == results[1] == results[2] == list(range(1, 9))
