"""Tests for the collective sampling primitive."""

import numpy as np
import pytest

from repro.graph import dcsbm_graph, metis_partition, renumber_by_partition
from repro.sampling import CollectiveSampler, CSPConfig
from repro.sampling.ops import AllToAll
from repro.utils import ConfigError


def build_sampler(num_gpus=4, seed=0, weighted=False):
    graph = dcsbm_graph(600, 12_000, num_communities=4, rng=7)
    if weighted:
        rng = np.random.default_rng(1)
        graph = graph.with_node_weights(
            rng.random(graph.num_nodes).astype(np.float32)
        )
    part = metis_partition(graph, num_gpus, rng=seed)
    rgraph, rpart, nb = renumber_by_partition(graph, part)
    sampler = CollectiveSampler.from_partitioned(rgraph, nb.part_offsets, seed=seed)
    return sampler, rgraph, nb


def seeds_for(sampler, per_gpu=20, seed=3):
    rng = np.random.default_rng(seed)
    out = []
    for g in range(sampler.num_gpus):
        lo, hi = sampler.part_offsets[g], sampler.part_offsets[g + 1]
        out.append(rng.choice(np.arange(lo, hi), size=per_gpu, replace=False))
    return out


class TestNodeWise:
    def test_structure(self):
        sampler, rgraph, _ = build_sampler()
        seeds = seeds_for(sampler)
        cfg = CSPConfig(fanout=(3, 2))
        samples, trace, stats = sampler.sample(seeds, cfg)
        assert len(samples) == 4
        for g, s in enumerate(samples):
            assert s.num_layers == 2
            assert np.array_equal(s.blocks[0].dst_nodes, seeds[g])
            # block 1's dst is everything block 0 touched
            assert np.array_equal(s.blocks[1].dst_nodes, s.blocks[0].all_nodes)

    def test_samples_are_true_neighbors(self):
        sampler, rgraph, _ = build_sampler()
        seeds = seeds_for(sampler)
        samples, _, _ = sampler.sample(seeds, CSPConfig(fanout=(4,)))
        for s in samples:
            b = s.blocks[0]
            for i, v in enumerate(b.dst_nodes):
                nbrs = set(rgraph.neighbors(int(v)).tolist())
                assert set(b.src_of(i).tolist()) <= nbrs

    def test_fanout_respected(self):
        sampler, rgraph, _ = build_sampler()
        seeds = seeds_for(sampler)
        samples, _, _ = sampler.sample(seeds, CSPConfig(fanout=(5,)))
        deg = rgraph.degrees
        for s in samples:
            b = s.blocks[0]
            counts = np.diff(b.offsets)
            for i, v in enumerate(b.dst_nodes):
                expect = 5 if deg[v] > 0 else 0
                assert counts[i] == expect

    def test_trace_has_three_stages_per_layer(self):
        sampler, _, _ = build_sampler()
        seeds = seeds_for(sampler)
        _, trace, _ = sampler.sample(seeds, CSPConfig(fanout=(3, 2)))
        labels = [getattr(op, "label", "") for op in trace]
        assert labels == [
            "shuffle-L0", "sample-L0", "reshuffle-L0",
            "shuffle-L1", "sample-L1", "reshuffle-L1",
        ]

    def test_shuffle_traffic_is_ids_only(self):
        """Task push: shuffle moves 8 bytes per remote frontier node."""
        sampler, _, _ = build_sampler()
        seeds = seeds_for(sampler)
        _, trace, stats = sampler.sample(seeds, CSPConfig(fanout=(3,)))
        shuffle = next(op for op in trace if op.label == "shuffle-L0")
        remote_tasks = stats.tasks_total - stats.local_tasks
        assert shuffle.matrix.sum() == pytest.approx(remote_tasks * 8)

    def test_seed_copartition_makes_layer0_local(self):
        """Seeds placed on their owner make layer-0 shuffle free."""
        sampler, _, _ = build_sampler()
        seeds = seeds_for(sampler)
        _, trace, _ = sampler.sample(seeds, CSPConfig(fanout=(3,)))
        shuffle = next(op for op in trace if op.label == "shuffle-L0")
        assert shuffle.matrix.sum() == 0

    def test_locality_beats_random_with_metis(self):
        sampler, _, _ = build_sampler()
        seeds = seeds_for(sampler)
        _, _, stats = sampler.sample(seeds, CSPConfig(fanout=(5, 5)))
        assert stats.locality > 1.0 / sampler.num_gpus  # better than random

    def test_single_gpu_all_local(self):
        sampler, _, _ = build_sampler(num_gpus=1)
        seeds = seeds_for(sampler, per_gpu=30)
        samples, trace, stats = sampler.sample(seeds, CSPConfig(fanout=(3, 2)))
        assert stats.locality == 1.0
        for op in trace:
            if isinstance(op, AllToAll):
                assert op.matrix.sum() == 0

    def test_deterministic(self):
        a, _, _ = build_sampler(seed=5)[0].sample(
            seeds_for(build_sampler(seed=5)[0]), CSPConfig(fanout=(3,))
        )
        b, _, _ = build_sampler(seed=5)[0].sample(
            seeds_for(build_sampler(seed=5)[0]), CSPConfig(fanout=(3,))
        )
        for x, y in zip(a, b):
            assert np.array_equal(x.blocks[0].src_nodes, y.blocks[0].src_nodes)

    def test_biased_zero_weight_excluded(self):
        sampler, rgraph, _ = build_sampler(weighted=True)
        seeds = seeds_for(sampler)
        samples, _, _ = sampler.sample(
            seeds, CSPConfig(fanout=(4,), biased=True)
        )
        # all sampled nodes must be real neighbours (sanity under bias)
        for s in samples:
            b = s.blocks[0]
            for i, v in enumerate(b.dst_nodes):
                assert set(b.src_of(i)) <= set(rgraph.neighbors(int(v)))

    def test_without_replacement_distinct(self):
        sampler, _, _ = build_sampler()
        seeds = seeds_for(sampler)
        samples, _, _ = sampler.sample(
            seeds, CSPConfig(fanout=(6,), replace=False)
        )
        for s in samples:
            b = s.blocks[0]
            for i in range(b.num_dst):
                src = b.src_of(i)
                assert len(np.unique(src)) == len(src)


class TestLayerWise:
    def test_budget_respected(self):
        sampler, _, _ = build_sampler()
        seeds = seeds_for(sampler, per_gpu=10)
        samples, trace, _ = sampler.sample(
            seeds, CSPConfig(fanout=(30, 30), scheme="layer")
        )
        for s in samples:
            for b in s.blocks:
                assert b.num_edges <= 30

    def test_weight_exchange_in_trace(self):
        sampler, _, _ = build_sampler()
        seeds = seeds_for(sampler, per_gpu=10)
        _, trace, _ = sampler.sample(
            seeds, CSPConfig(fanout=(20,), scheme="layer")
        )
        labels = [op.label for op in trace]
        assert "weights-req" in labels and "weights-resp" in labels

    def test_quota_proportional_to_degree(self):
        """Eq. (2): heavy nodes get most of the layer budget."""
        sampler, rgraph, _ = build_sampler()
        seeds = seeds_for(sampler, per_gpu=50)
        samples, _, _ = sampler.sample(
            seeds, CSPConfig(fanout=(500,), scheme="layer")
        )
        deg = rgraph.degrees
        for s in samples:
            b = s.blocks[0]
            counts = np.diff(b.offsets)
            d = deg[b.dst_nodes]
            heavy = d >= np.median(d)
            if heavy.any() and (~heavy).any():
                assert counts[heavy].mean() >= counts[~heavy].mean()


class TestValidation:
    def test_wrong_seed_count(self):
        sampler, _, _ = build_sampler()
        with pytest.raises(ConfigError):
            sampler.sample([np.array([0])], CSPConfig(fanout=(2,)))

    def test_bad_config(self):
        with pytest.raises(ConfigError):
            CSPConfig(fanout=())
        with pytest.raises(ConfigError):
            CSPConfig(fanout=(2,), scheme="magic")
        with pytest.raises(ConfigError):
            CSPConfig(fanout=(-1,))

    def test_mismatched_offsets(self):
        sampler, rgraph, nb = build_sampler()
        with pytest.raises(ConfigError):
            CollectiveSampler(sampler.patches, nb.part_offsets[:-1])
