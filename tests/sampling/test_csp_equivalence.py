"""Flat-batch fast path vs chunked reference: bit-for-bit equivalence.

The CSP shuffle/sample/reshuffle round has two implementations (see
``docs/performance.md``): the flat-batch fast path every system uses,
and the seed's per-(owner, origin) chunked round kept as
``CollectiveSampler._reference_one_layer``.  Both consume the per-owner
RNG streams in the same order, so with equal seeds they must return
byte-identical :class:`MiniBatchSample` blocks, ``OpTrace`` matrices
and ``CSPStats`` — this suite asserts exactly that across every
supported sampling mode and GPU count, on randomized, unevenly-sized
(including empty) per-GPU seed batches.
"""

from functools import lru_cache

import numpy as np
import pytest

from repro.graph import dcsbm_graph, metis_partition, renumber_by_partition
from repro.sampling import CollectiveSampler, CSPConfig

GPU_COUNTS = (1, 2, 4, 8)


@lru_cache(maxsize=None)
def _graph_and_offsets(k: int, weighted: bool):
    graph = dcsbm_graph(600, 12_000, num_communities=4, rng=7)
    if weighted:
        rng = np.random.default_rng(1)
        graph = graph.with_node_weights(
            rng.random(graph.num_nodes).astype(np.float32)
        )
    part = metis_partition(graph, k, rng=0)
    rgraph, _, nb = renumber_by_partition(graph, part)
    return rgraph, tuple(int(x) for x in nb.part_offsets)


def _sampler_pair(k: int, weighted: bool, seed: int = 0):
    """Two samplers with identical RNG streams; one runs the reference."""
    rgraph, offsets = _graph_and_offsets(k, weighted)
    offsets = np.asarray(offsets, dtype=np.int64)
    fast = CollectiveSampler.from_partitioned(rgraph, offsets, seed=seed)
    ref = CollectiveSampler.from_partitioned(rgraph, offsets, seed=seed)
    ref.use_fast_path = False
    return fast, ref


def _random_seeds(sampler, rng, allow_empty=True):
    """Unevenly-sized per-GPU seed batches (empty batches included)."""
    out = []
    for g in range(sampler.num_gpus):
        lo, hi = sampler.part_offsets[g], sampler.part_offsets[g + 1]
        n = int(rng.integers(0 if allow_empty else 1, 25))
        out.append(rng.choice(np.arange(lo, hi), size=n, replace=False))
    return out


def _assert_identical(fast_result, ref_result):
    (sa, ta, fa), (sb, tb, fb) = fast_result, ref_result
    assert fa == fb  # CSPStats is a frozen dataclass of ints
    for x, y in zip(sa, sb):
        assert np.array_equal(x.seeds, y.seeds)
        assert np.array_equal(x.all_nodes, y.all_nodes)
        assert x.all_nodes.dtype == y.all_nodes.dtype
        for bx, by in zip(x.blocks, y.blocks):
            assert np.array_equal(bx.dst_nodes, by.dst_nodes)
            assert np.array_equal(bx.src_nodes, by.src_nodes)
            assert np.array_equal(bx.offsets, by.offsets)
            assert bx.src_nodes.dtype == by.src_nodes.dtype
            assert np.array_equal(bx.all_nodes, by.all_nodes)
            assert bx.all_nodes.dtype == by.all_nodes.dtype
    assert len(ta.ops) == len(tb.ops)
    for oa, ob in zip(ta.ops, tb.ops):
        assert type(oa) is type(ob)
        assert getattr(oa, "label", "") == getattr(ob, "label", "")
        for attr in ("matrix", "work", "items"):
            if hasattr(oa, attr):
                assert np.array_equal(getattr(oa, attr), getattr(ob, attr))


@pytest.mark.parametrize("k", GPU_COUNTS)
@pytest.mark.parametrize("scheme", ["node", "layer"])
@pytest.mark.parametrize("biased", [False, True])
@pytest.mark.parametrize("replace", [True, False])
def test_fast_path_bit_identical(k, scheme, biased, replace):
    fast, ref = _sampler_pair(k, weighted=biased)
    rng = np.random.default_rng(hash((k, scheme, biased, replace)) % 2**32)
    seeds = _random_seeds(fast, rng)
    cfg = CSPConfig(
        fanout=(6, 4), scheme=scheme, biased=biased, replace=replace
    )
    _assert_identical(fast.sample(seeds, cfg), ref.sample(seeds, cfg))


@pytest.mark.parametrize("k", (2, 4))
def test_fast_path_identical_over_consecutive_batches(k):
    """RNG streams stay aligned across batches, not just the first."""
    fast, ref = _sampler_pair(k, weighted=False)
    rng_a = np.random.default_rng(11)
    rng_b = np.random.default_rng(11)
    cfg = CSPConfig(fanout=(5, 3, 2))
    for _ in range(3):
        seeds = _random_seeds(fast, rng_a)
        _assert_identical(
            fast.sample(seeds, cfg),
            ref.sample(_random_seeds(ref, rng_b), cfg),
        )


def test_all_empty_frontiers():
    fast, ref = _sampler_pair(4, weighted=False)
    seeds = [np.empty(0, dtype=np.int64) for _ in range(4)]
    cfg = CSPConfig(fanout=(3, 2))
    _assert_identical(fast.sample(seeds, cfg), ref.sample(seeds, cfg))


def test_zero_fanout_layer():
    fast, ref = _sampler_pair(2, weighted=False)
    rng = np.random.default_rng(5)
    seeds = _random_seeds(fast, rng, allow_empty=False)
    cfg = CSPConfig(fanout=(4, 0))
    _assert_identical(fast.sample(seeds, cfg), ref.sample(seeds, cfg))


def test_fast_path_is_the_default():
    fast, ref = _sampler_pair(2, weighted=False)
    assert fast.use_fast_path is True
    assert ref.use_fast_path is False
