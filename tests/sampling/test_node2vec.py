"""Tests for node2vec second-order walks."""

import numpy as np
import pytest

from repro.graph import dcsbm_graph, metis_partition, renumber_by_partition
from repro.sampling import CollectiveSampler, node2vec_walk
from repro.sampling.ops import AllToAll
from repro.utils import ConfigError


@pytest.fixture(scope="module")
def setting():
    graph = dcsbm_graph(300, 6000, num_communities=4, rng=2)
    part = metis_partition(graph, 4, rng=0)
    rgraph, _, nb = renumber_by_partition(graph, part)
    sampler = CollectiveSampler.from_partitioned(rgraph, nb.part_offsets, seed=0)
    rng = np.random.default_rng(4)
    starts = []
    for g in range(4):
        lo, hi = nb.part_offsets[g], nb.part_offsets[g + 1]
        starts.append(rng.integers(lo, hi, size=6))
    return rgraph, sampler, starts


class TestNode2Vec:
    def test_paths_are_walks(self, setting):
        rgraph, sampler, starts = setting
        paths, _ = node2vec_walk(sampler, starts, length=4, p=2.0, q=0.5, seed=0)
        for g, mat in enumerate(paths):
            assert np.array_equal(mat[:, 0], starts[g])
            for row in mat:
                for t in range(4):
                    if row[t + 1] < 0:
                        break
                    assert row[t + 1] in rgraph.neighbors(int(row[t]))

    def test_low_p_encourages_backtracking(self, setting):
        """p << 1 makes returning to the predecessor much more likely."""
        rgraph, sampler, starts = setting

        def backtrack_rate(p):
            total = back = 0
            for seed in range(6):
                paths, _ = node2vec_walk(
                    sampler, starts, length=6, p=p, q=1.0, seed=seed
                )
                for mat in paths:
                    for row in mat:
                        for t in range(1, 5):
                            if row[t + 1] < 0:
                                break
                            total += 1
                            back += int(row[t + 1] == row[t - 1])
            return back / max(total, 1)

        assert backtrack_rate(0.05) > 2.5 * backtrack_rate(20.0)

    def test_trace_has_query_traffic(self, setting):
        _, sampler, starts = setting
        _, trace = node2vec_walk(sampler, starts, length=3, seed=1)
        queries = [op for op in trace
                   if isinstance(op, AllToAll) and "query" in op.label]
        assert queries
        assert sum(op.matrix.sum() for op in queries) > 0

    def test_validation(self, setting):
        _, sampler, starts = setting
        with pytest.raises(ConfigError):
            node2vec_walk(sampler, starts, length=-1)
        with pytest.raises(ConfigError):
            node2vec_walk(sampler, starts, length=2, p=0)
        with pytest.raises(ConfigError):
            node2vec_walk(sampler, starts[:2], length=2)
