"""Table 2: CSP expressiveness — every configurable combination runs.

The paper's Table 2 lists CSP's parameters (Seed, Scheme, Layer,
IsBiased, FanOut).  This test sweeps the full grid on a partitioned
graph and checks the structural contract of each combination.
"""

import itertools

import numpy as np
import pytest

from repro.graph import dcsbm_graph, metis_partition, renumber_by_partition
from repro.sampling import CollectiveSampler, CSPConfig


@pytest.fixture(scope="module")
def setting():
    graph = dcsbm_graph(500, 10_000, num_communities=4, rng=13)
    rng = np.random.default_rng(1)
    graph = graph.with_node_weights(rng.random(graph.num_nodes).astype(np.float32))
    part = metis_partition(graph, 4, rng=0)
    rgraph, _, nb = renumber_by_partition(graph, part)
    sampler = CollectiveSampler.from_partitioned(rgraph, nb.part_offsets, seed=0)
    seeds = []
    srng = np.random.default_rng(2)
    for g in range(4):
        lo, hi = nb.part_offsets[g], nb.part_offsets[g + 1]
        seeds.append(srng.integers(lo, hi, size=12))
    return rgraph, sampler, seeds


GRID = list(itertools.product(
    ("node", "layer"),          # Scheme
    (1, 2),                     # Layer count
    (False, True),              # IsBiased
    (True, False),              # with / without replacement
))


@pytest.mark.parametrize("scheme,layers,biased,replace", GRID)
def test_table2_grid(setting, scheme, layers, biased, replace):
    rgraph, sampler, seeds = setting
    fanout = tuple([4] * layers) if scheme == "node" else tuple([25] * layers)
    cfg = CSPConfig(fanout=fanout, scheme=scheme, biased=biased,
                    replace=replace)
    samples, trace, stats = sampler.sample(seeds, cfg)

    assert len(samples) == 4
    assert stats.tasks_total > 0
    deg = rgraph.degrees
    for g, s in enumerate(samples):
        assert s.num_layers == layers
        assert np.array_equal(s.blocks[0].dst_nodes, seeds[g])
        for block in s.blocks:
            counts = np.diff(block.offsets)
            if scheme == "node":
                # per-node fan-out bound (exact when replace & deg > 0)
                for i, v in enumerate(block.dst_nodes):
                    cap = fanout[0] if replace else min(fanout[0], deg[v])
                    assert counts[i] <= max(cap, fanout[0])
            else:
                # layer-wise: the whole layer respects the budget
                assert block.num_edges <= fanout[0]
            # sampled nodes are genuine neighbours
            for i in range(min(block.num_dst, 5)):
                v = int(block.dst_nodes[i])
                assert set(block.src_of(i)) <= set(rgraph.neighbors(v))
            if not replace:
                for i in range(block.num_dst):
                    seg = block.src_of(i)
                    assert len(np.unique(seg)) == len(seg)


def test_random_walk_is_fanout1_special_case(setting):
    """§4.2: random walk == node-wise CSP with fan-out 1 per layer."""
    rgraph, sampler, seeds = setting
    cfg = CSPConfig(fanout=(1, 1, 1))
    samples, _, _ = sampler.sample(seeds, cfg)
    for s in samples:
        for block in s.blocks:
            assert (np.diff(block.offsets) <= 1).all()
