"""Tests for the op-trace vocabulary."""

import numpy as np
import pytest

from repro.sampling.ops import (
    AllReduce,
    AllToAll,
    HostWork,
    LocalKernel,
    NetworkTransfer,
    OpTrace,
    Overhead,
    ParallelGroup,
    PCIeCopy,
    UVAGather,
)


class TestOpTrace:
    def test_add_extend_iter(self):
        a, b = OpTrace(), OpTrace()
        a.add(Overhead(0.1))
        b.add(Overhead(0.2))
        b.add(Overhead(0.3))
        a.extend(b)
        assert len(a) == 3
        assert [op.seconds for op in a] == [0.1, 0.2, 0.3]

    def test_nvlink_payload_excludes_diagonal(self):
        t = OpTrace()
        m = np.full((3, 3), 10.0)
        t.add(AllToAll(m))
        assert t.nvlink_payload_bytes() == pytest.approx(60.0)

    def test_flat_ops_walks_parallel_branches(self):
        t = OpTrace()
        inner1 = AllToAll(np.zeros((2, 2)))
        inner2 = UVAGather(np.array([3.0, 0.0]), item_bytes=8)
        t.add(ParallelGroup(branches=((inner1,), (inner2,))))
        flat = list(t.flat_ops())
        assert inner1 in flat and inner2 in flat

    def test_uva_accounting(self):
        t = OpTrace()
        t.add(UVAGather(np.array([10.0, 5.0]), item_bytes=8))
        assert t.uva_payload_bytes() == pytest.approx(15 * 8)
        assert t.uva_wire_bytes() == pytest.approx(15 * 50)

    def test_uva_wire_rounds_packets_up(self):
        t = OpTrace()
        t.add(UVAGather(np.array([1.0]), item_bytes=33))  # 2 packets
        assert t.uva_wire_bytes() == pytest.approx(100)

    def test_pcie_bulk_bytes(self):
        t = OpTrace()
        t.add(PCIeCopy(np.array([100.0, 200.0])))
        assert t.pcie_bulk_bytes() == pytest.approx(300.0)

    def test_mixed_trace_accounting(self):
        t = OpTrace()
        t.add(AllToAll(np.array([[0.0, 7.0], [3.0, 0.0]])))
        t.add(LocalKernel("sample", np.array([5.0, 5.0])))
        t.add(HostWork(np.array([1.0, 1.0])))
        t.add(AllReduce(nbytes=64))
        t.add(NetworkTransfer(np.zeros((2, 2))))
        assert t.nvlink_payload_bytes() == pytest.approx(10.0)
        assert t.uva_payload_bytes() == 0
        assert len(t) == 5
