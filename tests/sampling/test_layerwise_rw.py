"""Tests for layer-wise sampling helpers and random walks."""

import numpy as np
import pytest

from repro.graph import dcsbm_graph, metis_partition, renumber_by_partition
from repro.sampling import (
    CollectiveSampler,
    layerwise_quotas,
    layerwise_sample_noreplace,
    random_walk,
)
from repro.utils import ConfigError


@pytest.fixture(scope="module")
def setting():
    graph = dcsbm_graph(500, 9_000, num_communities=4, rng=11)
    part = metis_partition(graph, 4, rng=0)
    rgraph, _, nb = renumber_by_partition(graph, part)
    sampler = CollectiveSampler.from_partitioned(rgraph, nb.part_offsets, seed=0)
    rng = np.random.default_rng(5)
    frontiers = []
    for g in range(4):
        lo, hi = nb.part_offsets[g], nb.part_offsets[g + 1]
        frontiers.append(rng.choice(np.arange(lo, hi), size=15, replace=False))
    return rgraph, sampler, frontiers


class TestQuotas:
    def test_sum_equals_budget(self):
        q = layerwise_quotas(np.array([1.0, 2.0, 3.0]), 100, rng=0)
        assert q.sum() == 100

    def test_proportionality(self):
        q = layerwise_quotas(np.array([1.0, 9.0]), 10_000, rng=0)
        assert q[1] / q[0] == pytest.approx(9.0, rel=0.2)

    def test_zero_weights(self):
        assert layerwise_quotas(np.zeros(3), 10, rng=0).tolist() == [0, 0, 0]

    def test_empty_frontier(self):
        assert len(layerwise_quotas(np.array([]), 10, rng=0)) == 0

    def test_negative_budget(self):
        with pytest.raises(ConfigError):
            layerwise_quotas(np.array([1.0]), -1, rng=0)


class TestLayerwiseNoReplace:
    def test_budget_and_distinct_edges(self, setting):
        rgraph, sampler, frontiers = setting
        blocks, trace = layerwise_sample_noreplace(sampler, frontiers, budget=25)
        for b in blocks:
            assert b.num_edges <= 25

    def test_edges_are_real(self, setting):
        rgraph, sampler, frontiers = setting
        blocks, _ = layerwise_sample_noreplace(sampler, frontiers, budget=25)
        for b in blocks:
            for i, v in enumerate(b.dst_nodes):
                assert set(b.src_of(i)) <= set(rgraph.neighbors(int(v)))

    def test_small_neighborhood_takes_everything(self, setting):
        rgraph, sampler, frontiers = setting
        small = [f[:1] for f in frontiers]
        blocks, _ = layerwise_sample_noreplace(sampler, small, budget=10_000)
        deg = rgraph.degrees
        for g, b in enumerate(blocks):
            assert b.num_edges == int(deg[small[g][0]])

    def test_response_traffic_bounded_by_budget(self, setting):
        rgraph, sampler, frontiers = setting
        budget = 25
        _, trace = layerwise_sample_noreplace(sampler, frontiers, budget=budget)
        resp = next(op for op in trace if getattr(op, "label", "") == "lw-resp")
        k = sampler.num_gpus
        # each GPU pair carries at most budget (node, key) pairs
        assert resp.matrix.max() <= budget * 16

    def test_frontier_count_checked(self, setting):
        _, sampler, frontiers = setting
        with pytest.raises(ConfigError):
            layerwise_sample_noreplace(sampler, frontiers[:2], budget=5)


class TestRandomWalk:
    def test_paths_are_walks(self, setting):
        rgraph, sampler, frontiers = setting
        starts = [f[:8] for f in frontiers]
        paths, trace = random_walk(sampler, starts, length=4, seed=0)
        for g, mat in enumerate(paths):
            assert mat.shape == (8, 5)
            assert np.array_equal(mat[:, 0], starts[g])
            for row in mat:
                for t in range(4):
                    if row[t + 1] < 0:
                        continue
                    assert row[t + 1] in rgraph.neighbors(int(row[t]))

    def test_termination_padding(self, setting):
        rgraph, sampler, frontiers = setting
        starts = [f[:5] for f in frontiers]
        paths, _ = random_walk(sampler, starts, length=3, stop_prob=0.9, seed=1)
        # with stop_prob 0.9 most walks die early: -1 padding appears
        all_vals = np.concatenate([p.ravel() for p in paths])
        assert (all_vals == -1).any()

    def test_dead_walk_stays_dead(self, setting):
        rgraph, sampler, frontiers = setting
        starts = [f[:5] for f in frontiers]
        paths, _ = random_walk(sampler, starts, length=6, stop_prob=0.5, seed=2)
        for mat in paths:
            for row in mat:
                dead = np.flatnonzero(row == -1)
                if len(dead):
                    assert (row[dead[0]:] == -1).all()

    def test_zero_length(self, setting):
        _, sampler, frontiers = setting
        starts = [f[:3] for f in frontiers]
        paths, _ = random_walk(sampler, starts, length=0, seed=0)
        for g, mat in enumerate(paths):
            assert mat.shape == (3, 1)

    def test_bad_args(self, setting):
        _, sampler, frontiers = setting
        with pytest.raises(ConfigError):
            random_walk(sampler, [f[:2] for f in frontiers], length=-1)
        with pytest.raises(ConfigError):
            random_walk(sampler, [f[:2] for f in frontiers], length=1, stop_prob=1.0)
