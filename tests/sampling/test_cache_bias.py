"""GNS-style cached-node biased sampling (opt-in CSP hook).

Contracts (docs/caching.md): bias off — whether never set, set to 0,
or set then cleared — is the *exact* original sampling path, bit for
bit, on both the fast path and the chunked reference; bias on skews
neighbour draws toward cache-resident nodes without changing which
nodes can be sampled; ``refresh_cache_bias`` tracks the store's
current resident set (the dynamic policy calls it via ``on_change``).
"""

from functools import lru_cache

import numpy as np
import pytest

from repro.cache.store import PartitionedCache
from repro.graph import dcsbm_graph, metis_partition, renumber_by_partition
from repro.sampling import CollectiveSampler, CSPConfig
from repro.utils import ConfigError

K = 4


@lru_cache(maxsize=None)
def _graph_and_offsets():
    graph = dcsbm_graph(600, 12_000, num_communities=4, rng=7)
    part = metis_partition(graph, K, rng=0)
    rgraph, _, nb = renumber_by_partition(graph, part)
    return rgraph, tuple(int(x) for x in nb.part_offsets)


def _sampler(seed: int = 0) -> CollectiveSampler:
    rgraph, offsets = _graph_and_offsets()
    return CollectiveSampler.from_partitioned(
        rgraph, np.asarray(offsets, dtype=np.int64), seed=seed
    )


def _store(budget: int = 40) -> PartitionedCache:
    _, offsets = _graph_and_offsets()
    offsets = np.asarray(offsets, dtype=np.int64)
    n = int(offsets[-1])
    rng = np.random.default_rng(5)
    return PartitionedCache(offsets, rng.permutation(n),
                            budget_nodes=budget)


def _seeds(sampler, rng):
    out = []
    for g in range(sampler.num_gpus):
        lo, hi = sampler.part_offsets[g], sampler.part_offsets[g + 1]
        out.append(rng.choice(np.arange(lo, hi), size=12, replace=False))
    return out


def _run(sampler, seeds, fanout=(5, 3)):
    samples, trace, stats = sampler.sample(seeds, CSPConfig(fanout=fanout))
    return samples, stats


def _assert_same(result_a, result_b):
    (samples_a, stats_a), (samples_b, stats_b) = result_a, result_b
    assert stats_a == stats_b
    for a, b in zip(samples_a, samples_b):
        np.testing.assert_array_equal(a.all_nodes, b.all_nodes)
        for la, lb in zip(a.blocks, b.blocks):
            np.testing.assert_array_equal(la.src_nodes, lb.src_nodes)
            np.testing.assert_array_equal(la.dst_nodes, lb.dst_nodes)
            np.testing.assert_array_equal(la.offsets, lb.offsets)


class TestDisabledIsIdentity:
    @pytest.mark.parametrize("fast", [True, False])
    def test_zero_bias_bit_identical(self, fast):
        rng = np.random.default_rng(3)
        seeds = _seeds(_sampler(), rng)
        plain, biased = _sampler(), _sampler()
        plain.use_fast_path = biased.use_fast_path = fast
        biased.set_cache_bias(_store(), 0.0)
        _assert_same(_run(plain, seeds), _run(biased, seeds))

    def test_set_then_clear_bit_identical(self):
        rng = np.random.default_rng(4)
        seeds = _seeds(_sampler(), rng)
        plain, cleared = _sampler(), _sampler()
        cleared.set_cache_bias(_store(), 0.8)
        cleared.set_cache_bias(_store(), 0.0)
        _assert_same(_run(plain, seeds), _run(cleared, seeds))

    def test_negative_bias_rejected(self):
        with pytest.raises(ConfigError):
            _sampler().set_cache_bias(_store(), -0.5)

    def test_bias_needs_cached_mask(self):
        with pytest.raises(ConfigError):
            _sampler().set_cache_bias(object(), 0.5)


class TestEnabled:
    def test_fast_and_reference_agree_under_bias(self):
        """The biased weights flow through both implementations of the
        shuffle/sample/reshuffle round identically."""
        rng = np.random.default_rng(6)
        seeds = _seeds(_sampler(), rng)
        store = _store()
        fast, ref = _sampler(), _sampler()
        ref.use_fast_path = False
        fast.set_cache_bias(store, 2.0)
        ref.set_cache_bias(store, 2.0)
        _assert_same(_run(fast, seeds), _run(ref, seeds))

    def test_bias_skews_draws_toward_cached(self):
        """Over many batches, cached neighbours appear more often with
        the bias on than off."""
        store = _store()
        plain, biased = _sampler(), _sampler()
        biased.set_cache_bias(store, 8.0)
        hits = {"plain": 0, "biased": 0}
        totals = {"plain": 0, "biased": 0}
        rng = np.random.default_rng(9)
        for _ in range(8):
            seeds = _seeds(plain, rng)
            for name, sampler in (("plain", plain), ("biased", biased)):
                samples, _ = _run(sampler, seeds)
                for s in samples:
                    for block in s.blocks:
                        src = block.src_nodes
                        hits[name] += int(store.cached[src].sum())
                        totals[name] += len(src)
        rate_plain = hits["plain"] / totals["plain"]
        rate_biased = hits["biased"] / totals["biased"]
        assert rate_biased > rate_plain

    def test_refresh_tracks_store_mutation(self):
        """After the resident set changes, refresh rebuilds the weights
        from the *current* mask."""
        store = _store()
        sampler = _sampler()
        sampler.set_cache_bias(store, 8.0)
        before = [p.weights.copy() for p in sampler._bias_patches]
        store.cached[:] = ~store.cached
        sampler.refresh_cache_bias()
        after = [p.weights for p in sampler._bias_patches]
        assert any(
            not np.array_equal(a, b) for a, b in zip(before, after)
        )
