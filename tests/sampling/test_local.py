"""Tests for the local (per-patch) sampling kernels."""

import numpy as np
import pytest

from repro.graph import CSRGraph, uniform_graph
from repro.sampling import GraphPatch, sample_neighbors
from repro.sampling.local import _ranges
from repro.utils import ReproError


@pytest.fixture
def patch():
    """10 nodes; node v has in-neighbours {0..v-1} (node 0 has none)."""
    src, dst = [], []
    for v in range(10):
        for u in range(v):
            src.append(u)
            dst.append(v)
    g = CSRGraph.from_edges(np.array(src), np.array(dst), num_nodes=10)
    return GraphPatch.full(g)


@pytest.fixture
def wpatch():
    """3 nodes; node 2 has neighbours 0 (weight 0) and 1 (weight 5)."""
    g = CSRGraph.from_edges(
        np.array([0, 1]), np.array([2, 2]), num_nodes=3,
        edge_weights=np.array([0.0, 5.0], dtype=np.float32),
    )
    return GraphPatch.full(g)


class TestRanges:
    def test_basic(self):
        assert _ranges(np.array([3, 2])).tolist() == [0, 1, 2, 0, 1]

    def test_with_zeros(self):
        assert _ranges(np.array([0, 2, 0, 3])).tolist() == [0, 1, 0, 1, 2]

    def test_empty(self):
        assert len(_ranges(np.array([], dtype=np.int64))) == 0
        assert len(_ranges(np.array([0, 0]))) == 0


class TestUniformWithReplacement:
    def test_samples_are_neighbors(self, patch):
        src, counts = sample_neighbors(patch, np.array([5, 9]), 4, rng=0)
        assert counts.tolist() == [4, 4]
        assert set(src[:4]) <= set(range(5))
        assert set(src[4:]) <= set(range(9))

    def test_zero_degree_yields_nothing(self, patch):
        src, counts = sample_neighbors(patch, np.array([0, 3]), 2, rng=0)
        assert counts.tolist() == [0, 2]
        assert len(src) == 2

    def test_per_task_fanout(self, patch):
        src, counts = sample_neighbors(patch, np.array([5, 6, 7]), np.array([1, 0, 3]), rng=0)
        assert counts.tolist() == [1, 0, 3]
        assert len(src) == 4

    def test_empty_tasks(self, patch):
        src, counts = sample_neighbors(patch, np.array([], dtype=np.int64), 5, rng=0)
        assert len(src) == 0 and len(counts) == 0

    def test_deterministic(self, patch):
        a, _ = sample_neighbors(patch, np.array([9] * 10), 5, rng=42)
        b, _ = sample_neighbors(patch, np.array([9] * 10), 5, rng=42)
        assert np.array_equal(a, b)

    def test_approximately_uniform(self, patch):
        """Over many draws each neighbour of node 9 appears ~equally."""
        src, _ = sample_neighbors(patch, np.array([9] * 2000), 9, rng=1)
        freq = np.bincount(src, minlength=9)
        assert freq.min() > 0.8 * freq.mean()
        assert freq.max() < 1.2 * freq.mean()

    def test_out_of_range_task(self, patch):
        with pytest.raises(ReproError):
            sample_neighbors(patch, np.array([99]), 2, rng=0)

    def test_negative_fanout(self, patch):
        with pytest.raises(ReproError):
            sample_neighbors(patch, np.array([5]), -1, rng=0)


class TestWithoutReplacement:
    def test_no_duplicates(self, patch):
        for _ in range(5):
            src, counts = sample_neighbors(
                patch, np.array([9]), 5, rng=None, replace=False
            )
            assert counts[0] == 5
            assert len(np.unique(src)) == 5

    def test_degree_cap(self, patch):
        """fanout > degree keeps the whole neighbourhood, once each."""
        src, counts = sample_neighbors(patch, np.array([3]), 100, rng=0, replace=False)
        assert counts[0] == 3
        assert sorted(src.tolist()) == [0, 1, 2]

    def test_mixed_tasks(self, patch):
        src, counts = sample_neighbors(
            patch, np.array([0, 2, 9]), 4, rng=0, replace=False
        )
        assert counts.tolist() == [0, 2, 4]
        segs = np.split(src, np.cumsum(counts)[:-1])
        assert sorted(segs[1].tolist()) == [0, 1]
        assert len(np.unique(segs[2])) == 4

    def test_uniformity(self, patch):
        src, _ = sample_neighbors(
            patch, np.array([9] * 3000), 3, rng=2, replace=False
        )
        freq = np.bincount(src, minlength=9)
        assert freq.max() < 1.25 * freq.mean()


class TestBiased:
    def test_zero_weight_never_sampled(self, wpatch):
        src, counts = sample_neighbors(
            wpatch, np.array([2] * 500), 1, rng=0, biased=True
        )
        assert counts.sum() == 500
        assert set(src.tolist()) == {1}  # weight-0 neighbour 0 excluded

    def test_proportional_to_weights(self):
        g = CSRGraph.from_edges(
            np.array([0, 1]), np.array([2, 2]), num_nodes=3,
            edge_weights=np.array([1.0, 3.0], dtype=np.float32),
        )
        p = GraphPatch.full(g)
        src, _ = sample_neighbors(p, np.array([2] * 4000), 1, rng=3, biased=True)
        freq = np.bincount(src, minlength=2)
        assert freq[1] / freq[0] == pytest.approx(3.0, rel=0.15)

    def test_all_zero_weights_yield_nothing(self):
        g = CSRGraph.from_edges(
            np.array([0]), np.array([1]), num_nodes=2,
            edge_weights=np.array([0.0], dtype=np.float32),
        )
        p = GraphPatch.full(g)
        src, counts = sample_neighbors(p, np.array([1]), 3, rng=0, biased=True)
        assert counts.tolist() == [0]

    def test_biased_needs_weights(self, patch):
        with pytest.raises(ReproError):
            sample_neighbors(patch, np.array([5]), 2, rng=0, biased=True)

    def test_biased_without_replacement(self):
        g = CSRGraph.from_edges(
            np.array([0, 1, 2]), np.array([3, 3, 3]), num_nodes=4,
            edge_weights=np.array([1.0, 1.0, 100.0], dtype=np.float32),
        )
        p = GraphPatch.full(g)
        # heavy node 2 should virtually always be among 2 picks
        hits = 0
        for seed in range(50):
            src, counts = sample_neighbors(
                p, np.array([3]), 2, rng=seed, biased=True, replace=False
            )
            assert counts[0] == 2
            assert len(np.unique(src)) == 2
            hits += 2 in src
        assert hits >= 48


class TestGraphPatch:
    def test_slicing(self):
        g = uniform_graph(100, 1000, rng=0)
        patch = GraphPatch.from_graph(g, 20, 50)
        assert patch.base == 20
        assert patch.num_local == 30
        for i in range(30):
            assert np.array_equal(
                patch.indices[patch.indptr[i] : patch.indptr[i + 1]],
                g.neighbors(20 + i),
            )

    def test_bad_range(self):
        g = uniform_graph(10, 50, rng=0)
        with pytest.raises(ReproError):
            GraphPatch.from_graph(g, 5, 20)

    def test_cum_weights_requires_weights(self):
        g = uniform_graph(10, 50, rng=0)
        with pytest.raises(ReproError):
            _ = GraphPatch.full(g).cum_weights

    def test_nbytes(self):
        g = uniform_graph(10, 50, rng=0)
        assert GraphPatch.full(g).nbytes > 0
