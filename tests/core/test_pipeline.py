"""Tests for the producer-consumer pipeline runner."""

import numpy as np
import pytest

from repro.core.cost import OpCost
from repro.core.pipeline import PipelineRunner
from repro.hw import Cluster
from repro.utils import ConfigError, DeadlockError

K = 4


def kernel(dur, threads=1024):
    return OpCost(
        label="k", per_gpu=np.full(K, dur), stage=dur, threads=threads
    )


def collective(dur):
    return OpCost(
        label="c", per_gpu=np.full(K, dur), stage=dur, threads=128,
        collective=True,
    )


def batches(n, sample_dur=1.0, load_dur=1.0, train_dur=1.0):
    return [
        {
            "sample": [collective(sample_dur)],
            "load": [collective(load_dur)],
            "train": [kernel(train_dur)],
        }
        for _ in range(n)
    ]


@pytest.fixture
def cluster():
    return Cluster.dgx1(K)


class TestOverlap:
    def test_pipeline_beats_sequential(self, cluster):
        """Stages of different batches overlap: wall time approaches the
        bottleneck stage instead of the stage sum (paper Fig 12)."""
        b = batches(10)
        seq = PipelineRunner(cluster, b, sequential=True).run()
        pipe = PipelineRunner(cluster, b).run()
        assert seq.epoch_time == pytest.approx(30.0, rel=0.01)
        # perfect overlap would be ~12 (10 bottleneck stages + fill/drain)
        assert pipe.epoch_time < 0.5 * seq.epoch_time

    def test_pipeline_bounded_by_bottleneck(self, cluster):
        b = batches(10, sample_dur=2.0, load_dur=0.1, train_dur=0.1)
        pipe = PipelineRunner(cluster, b).run()
        assert pipe.epoch_time >= 20.0  # 10 sampler stages can't overlap
        assert pipe.epoch_time < 23.0

    def test_single_batch_no_gain(self, cluster):
        b = batches(1)
        seq = PipelineRunner(cluster, b, sequential=True).run()
        pipe = PipelineRunner(cluster, b).run()
        assert pipe.epoch_time == pytest.approx(seq.epoch_time, rel=0.01)

    def test_utilization_improves(self, cluster):
        b = batches(10)
        seq = PipelineRunner(cluster, b, sequential=True).run()
        pipe = PipelineRunner(cluster, b).run()
        assert pipe.utilization > seq.utilization

    def test_queue_capacity_throttles(self, cluster):
        """A fast sampler cannot run ahead more than the queue capacity."""
        b = batches(12, sample_dur=0.01, load_dur=0.01, train_dur=1.0)
        r1 = PipelineRunner(cluster, b, queue_capacity=1).run()
        r2 = PipelineRunner(cluster, b, queue_capacity=2).run()
        # both are trainer-bound; capacity 2 is enough (paper §5)
        assert r1.epoch_time == pytest.approx(12.0, rel=0.1)
        assert r2.epoch_time == pytest.approx(12.0, rel=0.1)

    def test_host_ops_do_not_occupy_gpu(self, cluster):
        host = OpCost(label="h", per_gpu=np.zeros(K), stage=1.0, threads=1,
                      host=True)
        b = [{"sample": [host], "load": [host], "train": [host]}] * 3
        res = PipelineRunner(cluster, b, sequential=True).run()
        assert res.utilization == pytest.approx(0.0)


class TestCCC:
    @staticmethod
    def skewed_batches(n):
        """Per-GPU straggler skew so that GPU 0 reaches its sampler
        collective first while GPU 3 reaches its loader collective
        first — the divergent launch order of Fig 8."""
        up = np.linspace(0.01, 0.4, K)
        down = up[::-1].copy()

        def local(per):
            return OpCost(label="k", per_gpu=per, stage=float(per.max()),
                          threads=256)

        return [
            {
                "sample": [local(up), collective(0.3)],
                "load": [local(down), collective(0.3)],
                "train": [kernel(0.05)],
            }
            for _ in range(n)
        ]

    def test_without_ccc_single_channel_deadlocks(self, cluster):
        """Fig 8: two workers' collectives interleave across GPUs."""
        with pytest.raises(DeadlockError):
            PipelineRunner(
                cluster, self.skewed_batches(6), ccc=False, comm_channels=1
            ).run()

    def test_with_ccc_single_channel_completes(self, cluster):
        res = PipelineRunner(
            cluster, self.skewed_batches(6), ccc=True, comm_channels=1
        ).run()
        assert res.epoch_time > 0

    def test_ccc_overhead_small(self, cluster):
        b = batches(8)
        with_ccc = PipelineRunner(cluster, b, ccc=True).run()
        without = PipelineRunner(cluster, b, ccc=False).run()
        # with 2 channels this workload happens not to deadlock; CCC
        # ordering should cost little
        assert with_ccc.epoch_time <= without.epoch_time * 1.5

    def test_single_gpu_never_deadlocks(self):
        cluster = Cluster.dgx1(1)
        ops = [
            {
                "sample": [OpCost("c", np.array([0.3]), 0.3, 128)],
                "load": [OpCost("c", np.array([0.2]), 0.2, 128)],
                "train": [OpCost("k", np.array([0.1]), 0.1, 1024)],
            }
        ] * 5
        res = PipelineRunner(cluster, ops, ccc=False, comm_channels=1).run()
        assert res.epoch_time > 0


class TestValidation:
    def test_missing_stage_rejected(self, cluster):
        with pytest.raises(ConfigError):
            PipelineRunner(cluster, [{"sample": [], "load": []}])


class TestChaos:
    """Fault injection against the pipeline runner itself."""

    @staticmethod
    def chaos_runner(cluster, b, plan, **kw):
        from repro.chaos import FaultInjector, FaultPlan, InvariantChecker

        injector = None if plan.fault_free else FaultInjector(plan)
        return PipelineRunner(cluster, b, injector=injector,
                              invariants=InvariantChecker(), **kw)

    def test_fault_free_bit_identical_with_invariants(self, cluster):
        from repro.chaos import FaultPlan

        b = batches(6)
        plain = PipelineRunner(cluster, b).run()
        audited = self.chaos_runner(cluster, b, FaultPlan()).run()
        assert audited.epoch_time == plain.epoch_time  # exact, not approx
        assert audited.utilization == plain.utilization
        assert audited.invariants["clean"]
        assert audited.invariants["checks"] > 0
        assert audited.lost_batches == 0

    def test_straggler_slows_epoch(self, cluster):
        from repro.chaos import FaultPlan
        from repro.chaos.faults import GpuStraggler

        b = batches(6)
        base = PipelineRunner(cluster, b).run()
        plan = FaultPlan((GpuStraggler(0.0, gpu=0, duration=1e3,
                                       slowdown=3.0),))
        slow = self.chaos_runner(cluster, b, plan).run()
        assert slow.epoch_time > base.epoch_time * 1.5
        assert slow.lost_batches == 0
        assert slow.invariants["clean"]

    def test_dropped_participant_degrades_but_terminates(self, cluster):
        from repro.chaos import FaultPlan
        from repro.chaos.faults import CollectiveDrop

        # gpu 1 never rendezvouses: every round must be abandoned by
        # the watchdog instead of hanging the simulation forever
        plan = FaultPlan((CollectiveDrop(0.0, gpu=1, duration=1e4),))
        res = self.chaos_runner(cluster, batches(4), plan,
                                collective_timeout=2.0).run()
        assert res.degraded_rounds > 0
        assert res.aborted_rounds >= res.degraded_rounds
        assert res.invariants["clean"]  # skipped bytes are accounted

    def test_trainer_crash_raises_diagnosed_stall(self, cluster):
        from repro.chaos import FaultPlan
        from repro.chaos.faults import WorkerCrash
        from repro.utils import PipelineStall

        # the dead trainer stops consuming; producers fill the bounded
        # queues and wedge — the regression this layer exists for
        plan = FaultPlan((WorkerCrash(0.0, gpu=0, stage="train"),))
        with pytest.raises(PipelineStall) as err:
            self.chaos_runner(cluster, batches(8), plan).run()
        assert "trainer-gpu0" in err.value.dead
        assert "trainer-gpu0" in str(err.value)

    def test_sampler_crash_loses_batches_but_completes(self, cluster):
        from repro.chaos import FaultPlan
        from repro.chaos.faults import WorkerCrash

        plan = FaultPlan((WorkerCrash(0.0, gpu=0, stage="sample"),))
        res = self.chaos_runner(cluster, batches(6), plan,
                                collective_timeout=2.0).run()
        assert res.lost_batches > 0
        assert res.invariants["clean"]

    def test_fig8_deadlock_is_not_misdiagnosed_as_stall(self, cluster):
        """A genuine launch-order deadlock (no dead worker) must stay a
        bare DeadlockError — PipelineStall means something died."""
        from repro.utils import PipelineStall

        with pytest.raises(DeadlockError) as err:
            PipelineRunner(
                cluster, TestCCC.skewed_batches(6), ccc=False,
                comm_channels=1,
            ).run()
        assert not isinstance(err.value, PipelineStall)
