"""Tests for metrics containers and result export."""

import csv
import dataclasses
import json

import pytest

from repro.core import RunConfig, build_system
from repro.core.metrics import BatchCost, EPOCH_FIELDS, RunResult, scrub_nan


@pytest.fixture(scope="module")
def result():
    cfg = RunConfig(dataset="tiny", num_gpus=2, hidden_dim=16, batch_size=8,
                    fanout=(4, 3))
    return build_system("DSP", cfg).train(epochs=2)


class TestBatchCost:
    def test_addition(self):
        a = BatchCost(sample_time=1, load_time=2, train_time=3,
                      nvlink_bytes=10, pcie_bytes=20, uva_payload_bytes=5)
        b = BatchCost(sample_time=0.5)
        c = a + b
        assert c.sample_time == 1.5
        assert c.total_time == pytest.approx(6.5)
        assert c.nvlink_bytes == 10

    def test_addition_covers_every_field(self):
        """Regression: ``__add__`` must sum *all* dataclass fields, so a
        newly added field can never be silently dropped again."""
        n = len(dataclasses.fields(BatchCost))
        a = BatchCost(*(float(i + 1) for i in range(n)))
        b = BatchCost(*(10.0 * (i + 1) for i in range(n)))
        c = a + b
        for i, f in enumerate(dataclasses.fields(BatchCost)):
            assert getattr(c, f.name) == pytest.approx(11.0 * (i + 1)), f.name


class TestScrubNan:
    def test_scalars(self):
        assert scrub_nan(float("nan")) is None
        assert scrub_nan(1.5) == 1.5
        assert scrub_nan("x") == "x"
        assert scrub_nan(None) is None

    def test_recurses_containers(self):
        out = scrub_nan({"a": float("nan"), "b": [1, float("nan")],
                         "c": (float("nan"),)})
        assert out == {"a": None, "b": [1, None], "c": [None]}


class TestRunResult:
    def test_aggregates(self, result):
        assert result.mean_epoch_time > 0
        assert result.mean_sample_time > 0
        assert 0 <= result.final_val_accuracy <= 1

    def test_to_json_roundtrip(self, result, tmp_path):
        path = tmp_path / "run.json"
        text = result.to_json(path)
        payload = json.loads(path.read_text())
        assert payload == json.loads(text)
        assert payload["system"] == "DSP"
        assert len(payload["epochs"]) == 2
        assert set(EPOCH_FIELDS) <= set(payload["epochs"][0])

    def test_json_nan_becomes_null(self):
        cfg = RunConfig(dataset="tiny", num_gpus=2, hidden_dim=16,
                        batch_size=8, fanout=(4, 3))
        r = build_system("DSP", cfg).train(epochs=1, functional=False,
                                           max_batches=2)
        payload = json.loads(r.to_json())
        assert payload["epochs"][0]["loss"] is None

    def test_to_csv(self, result, tmp_path):
        path = tmp_path / "run.csv"
        result.to_csv(path)
        rows = list(csv.reader(path.read_text().splitlines()))
        assert rows[0][:4] == ["system", "dataset", "num_gpus", "epoch"]
        assert len(rows) == 3  # header + 2 epochs
        assert rows[1][0] == "DSP"

    def test_empty_result(self):
        r = RunResult("DSP", "tiny", 2)
        assert r.final_val_accuracy == 0.0
        assert len(json.loads(r.to_json())["epochs"]) == 0
