"""Tests for the DSP data-layout planner."""

import numpy as np
import pytest

from repro.cache.policies import rank_by_degree
from repro.core.layout import WORKSPACE_FRACTION, plan_layout
from repro.graph import load_dataset, metis_partition, renumber_by_partition
from repro.hw import Cluster
from repro.utils import CapacityError, ConfigError


@pytest.fixture(scope="module")
def setting():
    ds = load_dataset("tiny")
    part = metis_partition(ds.graph, 4, rng=0)
    rgraph, _, nb = renumber_by_partition(ds.graph, part)
    pds = ds.permuted(nb.old_to_new, rgraph)
    hot = rank_by_degree(rgraph)
    return pds, rgraph, nb, hot


class TestPlanner:
    def test_everything_fits_on_big_gpus(self, setting):
        pds, rgraph, nb, hot = setting
        cluster = Cluster.dgx1(4)  # 16 GB per GPU, tiny dataset
        layout = plan_layout(pds, nb.part_offsets, cluster, hot, graph=rgraph)
        assert layout.topology_coverage == pytest.approx(1.0)
        # all features cached in aggregate
        assert layout.store.total_cached == pds.num_nodes

    def test_memory_reservations_tracked(self, setting):
        pds, rgraph, nb, hot = setting
        cluster = Cluster.dgx1(4)
        layout = plan_layout(pds, nb.part_offsets, cluster, hot, graph=rgraph)
        for mem in layout.memory:
            assert set(mem.reservations) == {"workspace", "topology",
                                             "feature-cache"}
            assert mem.used <= mem.capacity

    def test_tight_topology_budget_spills_cold_nodes(self, setting):
        pds, rgraph, nb, hot = setting
        cluster = Cluster.dgx1(4)
        layout = plan_layout(
            pds, nb.part_offsets, cluster, hot, graph=rgraph,
            topology_cache_bytes=rgraph.topology_nbytes / 16,
        )
        assert 0.0 < layout.topology_coverage < 1.0
        assert layout.topo_cold_global().any()

    def test_hot_adjacency_resident_first(self, setting):
        """Cold topology nodes must be colder than resident ones."""
        pds, rgraph, nb, hot = setting
        cluster = Cluster.dgx1(4)
        layout = plan_layout(
            pds, nb.part_offsets, cluster, hot, graph=rgraph,
            topology_cache_bytes=rgraph.topology_nbytes / 8,
        )
        rank = np.empty(rgraph.num_nodes, dtype=np.int64)
        rank[hot] = np.arange(rgraph.num_nodes)
        for g, mask in enumerate(layout.topo_cold):
            lo = layout.part_offsets[g]
            cold_ranks = rank[lo:lo + len(mask)][mask]
            hot_ranks = rank[lo:lo + len(mask)][~mask]
            if len(cold_ranks) and len(hot_ranks):
                assert hot_ranks.max() < cold_ranks.max() + len(mask)
                assert np.median(hot_ranks) < np.median(cold_ranks)

    def test_feature_budget_respected(self, setting):
        pds, rgraph, nb, hot = setting
        cluster = Cluster.dgx1(4)
        budget = 100 * pds.feature_dim * 4  # exactly 100 rows
        layout = plan_layout(
            pds, nb.part_offsets, cluster, hot, graph=rgraph,
            feature_cache_bytes=budget,
        )
        for g in range(4):
            assert len(layout.store.cached_nodes(g)) <= 100

    def test_feature_budget_over_memory_rejected(self, setting):
        pds, rgraph, nb, hot = setting
        cluster = Cluster.dgx1(4)
        with pytest.raises(CapacityError):
            plan_layout(
                pds, nb.part_offsets, cluster, hot, graph=rgraph,
                feature_cache_bytes=cluster.gpu.memory_bytes * 2,
            )

    def test_cluster_size_mismatch(self, setting):
        pds, rgraph, nb, hot = setting
        with pytest.raises(ConfigError):
            plan_layout(pds, nb.part_offsets, Cluster.dgx1(2), hot, graph=rgraph)

    def test_workspace_always_reserved(self, setting):
        pds, rgraph, nb, hot = setting
        cluster = Cluster.dgx1(4)
        layout = plan_layout(pds, nb.part_offsets, cluster, hot, graph=rgraph)
        for mem in layout.memory:
            assert mem.reservations["workspace"] == pytest.approx(
                cluster.gpu.memory_bytes * WORKSPACE_FRACTION
            )
