"""Tests for the cost engine."""

import numpy as np
import pytest

from repro.core.cost import CostEngine
from repro.hw import Cluster
from repro.sampling.ops import (
    AllReduce,
    AllToAll,
    HostWork,
    LocalKernel,
    OpTrace,
    Overhead,
    ParallelGroup,
    PCIeCopy,
    UVAGather,
)
from repro.utils import ConfigError, MB


@pytest.fixture
def engine():
    return CostEngine(Cluster.dgx1(4))


class TestOpCosts:
    def test_alltoall_is_collective(self, engine):
        m = np.full((4, 4), float(MB))
        np.fill_diagonal(m, 0)
        c = engine.op_cost(AllToAll(m))
        assert c.collective
        assert c.stage > 0
        assert c.nvlink_bytes > 0
        assert (c.per_gpu == c.stage).all()

    def test_single_gpu_alltoall_not_collective(self):
        eng = CostEngine(Cluster.dgx1(1))
        c = eng.op_cost(AllToAll(np.zeros((1, 1))))
        assert not c.collective

    def test_allreduce(self, engine):
        c = engine.op_cost(AllReduce(nbytes=4 * MB))
        assert c.collective and c.stage > 0

    def test_kernel_kinds(self, engine):
        for kind, work in [("sample", 1e5), ("gather", 1e7), ("compute", 1e9)]:
            c = engine.op_cost(LocalKernel(kind, np.full(4, work)))
            assert not c.collective
            assert c.stage == pytest.approx(c.per_gpu.max())
            assert c.stage > 0

    def test_unknown_kernel_kind(self, engine):
        with pytest.raises(ConfigError):
            engine.op_cost(LocalKernel("magic", np.ones(4)))

    def test_kernel_stage_is_max(self, engine):
        work = np.array([1e5, 1e6, 1e5, 1e5])
        c = engine.op_cost(LocalKernel("sample", work))
        assert c.stage == pytest.approx(c.per_gpu[1])
        assert c.per_gpu[0] < c.per_gpu[1]

    def test_uva_gather(self, engine):
        c = engine.op_cost(UVAGather(np.full(4, 1000.0), item_bytes=512))
        assert c.pcie_bytes > c.uva_payload  # amplified
        assert not c.collective

    def test_host_work_idles_gpus(self, engine):
        c = engine.op_cost(HostWork(np.full(4, 1e6), kind="sample"))
        assert c.host
        assert (c.per_gpu == 0).all()
        assert c.stage > 0

    def test_host_gather_kind(self, engine):
        c = engine.op_cost(HostWork(np.full(4, 1e8), kind="gather"))
        assert c.stage > 0

    def test_pcie_copy_contention(self):
        # GPUs 0,1 share a switch: copying on both takes longer per GPU
        eng = CostEngine(Cluster.dgx1(2))
        both = eng.op_cost(PCIeCopy(np.full(2, 64.0 * MB)))
        solo = CostEngine(Cluster.dgx1(1)).op_cost(PCIeCopy(np.array([64.0 * MB])))
        assert both.stage > 1.5 * solo.stage

    def test_overhead(self, engine):
        c = engine.op_cost(Overhead(0.01))
        assert c.host and c.stage == pytest.approx(0.01)

    def test_parallel_group_max_semantics(self, engine):
        slow = UVAGather(np.full(4, 1e6), item_bytes=512)
        fast = LocalKernel("gather", np.full(4, 1e3))
        group = ParallelGroup(branches=((slow,), (fast,)))
        c = engine.op_cost(group)
        assert c.stage == pytest.approx(engine.op_cost(slow).stage)
        assert c.pcie_bytes == pytest.approx(engine.op_cost(slow).pcie_bytes)

    def test_unknown_op(self, engine):
        with pytest.raises(ConfigError):
            engine.op_cost(object())


class TestTraceHelpers:
    def test_stage_time_sums(self, engine):
        trace = OpTrace()
        trace.add(LocalKernel("sample", np.full(4, 1e5)))
        trace.add(Overhead(0.005))
        t = engine.stage_time(trace)
        k = engine.op_cost(LocalKernel("sample", np.full(4, 1e5))).stage
        assert t == pytest.approx(k + 0.005)

    def test_launch_scale_shrinks_constants(self):
        cluster = Cluster.dgx1(4)
        full = CostEngine(cluster, launch_scale=1.0)
        tiny = CostEngine(cluster, launch_scale=0.01)
        op = AllToAll(np.zeros((4, 4)))
        assert tiny.op_cost(op).stage < full.op_cost(op).stage

    def test_occupancy_of(self, engine):
        costs = [engine.op_cost(LocalKernel("compute", np.full(4, 1e11)))]
        occ = engine.occupancy_of(costs, wall=costs[0].stage)
        assert 0.5 < occ <= 1.01  # a big GEMM fills the whole GPU
