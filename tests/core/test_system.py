"""Integration tests: the six end-to-end systems."""

import numpy as np
import pytest

from repro.core import RunConfig, SYSTEMS, build_system
from repro.utils import ConfigError


CFG = RunConfig(
    dataset="tiny", num_gpus=4, hidden_dim=16, batch_size=16, fanout=(5, 3),
    seed=1,
)


@pytest.fixture(scope="module", params=sorted(SYSTEMS))
def system(request):
    return build_system(request.param, CFG)


class TestAllSystems:
    def test_epoch_runs_and_learns(self, system):
        m1 = system.run_epoch()
        m2 = system.run_epoch()
        assert m1.epoch_time > 0
        assert m1.sample_time > 0
        assert m1.num_batches >= 2
        assert np.isfinite(m1.loss)
        assert m2.loss < m1.loss * 1.2  # training is not diverging

    def test_metrics_consistency(self, system):
        m = system.run_epoch(max_batches=2, functional=False)
        assert m.epoch_time > 0
        assert np.isnan(m.loss)  # functional off -> no loss
        assert m.nvlink_bytes >= 0 and m.pcie_bytes >= 0


class TestConfigValidation:
    def test_unknown_system(self):
        with pytest.raises(ConfigError):
            build_system("magic", CFG)

    def test_bad_config(self):
        with pytest.raises(ConfigError):
            RunConfig(num_gpus=0)
        with pytest.raises(ConfigError):
            RunConfig(model="magic")
        with pytest.raises(ConfigError):
            RunConfig(batch_size=0)

    def test_with_override(self):
        cfg = CFG.with_(num_gpus=2)
        assert cfg.num_gpus == 2 and cfg.dataset == "tiny"

    def test_too_large_batch_rejected(self):
        cfg = CFG.with_(batch_size=10_000)
        sys = build_system("DGL-UVA", cfg)
        with pytest.raises(ConfigError):
            sys.run_epoch()


class TestDSPSpecifics:
    @pytest.fixture(scope="class")
    def dsp(self):
        return build_system("DSP", CFG)

    def test_seeds_copartitioned(self, dsp):
        seeds = dsp.data.train_nodes[:64]
        per_gpu = dsp._assign_seeds(seeds)
        for g, chunk in enumerate(per_gpu):
            if len(chunk):
                assert (dsp.sampler.owner_of(chunk) == g).all()

    def test_functional_false_freezes_model(self, dsp):
        before = [p.data.copy() for p in dsp.models[0].parameters()]
        dsp.run_epoch(max_batches=2, functional=False)
        after = dsp.models[0].parameters()
        for b, a in zip(before, after):
            assert np.array_equal(b, a.data)

    def test_replicas_stay_synchronized(self, dsp):
        """BSP: after an epoch all replicas hold identical parameters."""
        dsp.run_epoch()
        p0 = dsp.models[0].state()
        for model in dsp.models[1:]:
            for a, b in zip(p0, model.state()):
                np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-6)

    def test_pipeline_not_slower_than_seq(self):
        pipe = build_system("DSP", CFG).run_epoch(functional=False)
        seq = build_system("DSP-Seq", CFG).run_epoch(functional=False)
        assert pipe.epoch_time <= seq.epoch_time * 1.05

    def test_evaluate_returns_probability(self, dsp):
        acc = dsp.evaluate(dsp.data.val_nodes)
        assert 0.0 <= acc <= 1.0

    def test_training_beats_chance(self):
        dsp = build_system("DSP", CFG.with_(seed=3, lr=1e-2))
        for _ in range(8):
            m = dsp.run_epoch()
        assert m.val_accuracy > 1.3 / dsp.data.num_classes


class TestRunEpochValidation:
    def test_zero_max_batches_rejected(self):
        with pytest.raises(ConfigError):
            build_system("DSP", CFG).run_epoch(max_batches=0, functional=False)


class TestSystemComparisons:
    """The headline orderings of Table 4, on the tiny dataset."""

    @pytest.fixture(scope="class")
    def times(self):
        out = {}
        for name in SYSTEMS:
            sys = build_system(name, CFG)
            out[name] = sys.run_epoch(functional=False).epoch_time
        return out

    def test_dsp_fastest(self, times):
        for name, t in times.items():
            if name != "DSP":
                assert times["DSP"] <= t

    def test_gpu_systems_beat_cpu_systems(self, times):
        assert times["DGL-UVA"] < times["DGL-CPU"]
        assert times["DGL-UVA"] < times["PyG"]
