"""Tests for distributed full-graph inference."""

import numpy as np
import pytest

from repro.core import RunConfig, build_system
from repro.core.inference import full_graph_inference
from repro.nn import accuracy
from repro.sampling.ops import AllToAll
from repro.utils import ConfigError


CFG = RunConfig(dataset="tiny", num_gpus=4, hidden_dim=16, batch_size=16,
                fanout=(5, 3), lr=1e-2, seed=6)


@pytest.fixture(scope="module")
def trained():
    system = build_system("DSP", CFG)
    for _ in range(6):
        system.run_epoch()
    return system


class TestInference:
    def test_shapes_and_trace(self, trained):
        preds, trace = full_graph_inference(trained)
        assert preds.shape == (trained.data.num_nodes,
                               trained.data.num_classes)
        labels = [op.label for op in trace]
        # 2 layers x (boundary, gather, gemm)
        assert len([l for l in labels if "boundary" in l]) == 2
        assert len([l for l in labels if "gemm" in l]) == 2

    def test_full_graph_beats_sampled_eval(self, trained):
        """Inference over the full neighbourhood should be at least as
        accurate as the sampled estimate on the test set."""
        preds, _ = full_graph_inference(trained)
        test = trained.data.test_nodes
        full_acc = accuracy(preds[test], trained.data.labels[test])
        assert full_acc > 1.5 / trained.data.num_classes

    def test_chunking_is_exact(self, trained):
        a, _ = full_graph_inference(trained, chunk_size=64)
        b, _ = full_graph_inference(trained, chunk_size=100_000)
        np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-5)

    def test_boundary_volume_reflects_partition(self, trained):
        """Boundary exchange is bounded by edge-cut * embedding bytes."""
        _, trace = full_graph_inference(trained)
        first = next(op for op in trace if isinstance(op, AllToAll))
        from repro.graph import edge_cut
        from repro.graph.partition import Partition

        owner = trained.sampler.owner_of(
            np.arange(trained.data.num_nodes)
        )
        cut = edge_cut(trained.data.graph, Partition(owner, trained.k))
        assert first.matrix.sum() <= cut * trained.data.feature_dim * 4

    def test_boundary_bytes_are_unique_cross_sources(self, trained):
        """Under the METIS partition, layer-0 boundary exchange equals
        the number of *unique* cross-patch source nodes (per receiving
        GPU) times the embedding width — a source feeding many edges
        into a patch is sent once."""
        _, trace = full_graph_inference(trained)
        first = next(op for op in trace if isinstance(op, AllToAll))
        graph = trained.data.graph
        n = graph.num_nodes
        owner = trained.sampler.owner_of(np.arange(n))
        dst = np.repeat(np.arange(n), graph.degrees)
        src = graph.indices
        width = trained.data.feature_dim * 4
        for g in range(trained.k):
            remote = src[(owner[dst] == g) & (owner[src] != g)]
            uniq = np.unique(remote)
            assert first.matrix[:, g].sum() == pytest.approx(
                len(uniq) * width
            )
            # and the per-sender split matches each sender's share
            for o in range(trained.k):
                assert first.matrix[o, g] == pytest.approx(
                    int((owner[uniq] == o).sum()) * width
                )

    def test_inference_cost_positive(self, trained):
        _, trace = full_graph_inference(trained)
        t = trained.engine.stage_time(trace)
        assert t > 0

    def test_works_for_baselines_too(self):
        system = build_system("DGL-UVA", CFG)
        system.run_epoch()
        preds, trace = full_graph_inference(system)
        assert preds.shape[0] == system.data.num_nodes
        # single store: no boundary traffic
        first = next(op for op in trace if isinstance(op, AllToAll))
        assert first.matrix.sum() == 0

    def test_bad_chunk_size(self, trained):
        with pytest.raises(ConfigError):
            full_graph_inference(trained, chunk_size=0)
