"""Tests for the multi-machine DSP extension."""

import numpy as np
import pytest

from repro.core import RunConfig
from repro.core.multimachine import MultiMachineDSP
from repro.core.system import DSP
from repro.hw.devices import NetworkSpec
from repro.utils import ConfigError


CFG = RunConfig(dataset="tiny", num_gpus=2, hidden_dim=16, batch_size=8,
                fanout=(5, 3), seed=4)


class TestMultiMachine:
    def test_single_machine_matches_dsp_costs(self):
        mm = MultiMachineDSP(CFG, num_machines=1)
        dsp = DSP(CFG)
        a = mm.run_epoch(max_batches=3, functional=False)
        b = dsp.run_epoch(max_batches=3, functional=False)
        assert a.epoch_time == pytest.approx(b.epoch_time, rel=1e-6)
        assert a.network_bytes == 0

    def test_network_traffic_appears_with_two_machines(self):
        mm = MultiMachineDSP(CFG.with_(feature_cache_bytes=0.0),
                             num_machines=2)
        m = mm.run_epoch(max_batches=3, functional=False)
        # with no feature cache, half the cold shard is remote
        assert m.network_bytes > 0

    def test_global_batch_scales_with_machines(self):
        mm2 = MultiMachineDSP(CFG, num_machines=2)
        mm1 = MultiMachineDSP(CFG, num_machines=1)
        assert len(mm2._global_batches()) == len(mm1._global_batches()) // 2

    def test_replica_count(self):
        mm = MultiMachineDSP(CFG, num_machines=3)
        assert len(mm.models) == 3 * CFG.num_gpus

    def test_replicas_synchronized_after_epoch(self):
        mm = MultiMachineDSP(CFG, num_machines=2)
        mm.run_epoch()
        ref = mm.models[0].state()
        for model in mm.models[1:]:
            for a, b in zip(ref, model.state()):
                np.testing.assert_allclose(a, b, rtol=1e-5)

    def test_training_progresses(self):
        mm = MultiMachineDSP(CFG.with_(lr=1e-2), num_machines=2)
        m1 = mm.run_epoch()
        for _ in range(3):
            m2 = mm.run_epoch()
        assert m2.loss < m1.loss

    def test_gradient_ring_in_trace(self):
        mm = MultiMachineDSP(CFG, num_machines=2)
        batch = mm._global_batches()[0]
        per_gpu = mm._assign_seeds(batch)
        samples, _ = mm._sample(per_gpu)
        feats = [mm.data.features[s.all_nodes] for s in samples]
        trace, _, _ = mm._train_batch(samples, feats, functional=False)
        labels = [getattr(op, "label", "") for op in trace]
        assert "grad-network-ring" in labels

    def test_slow_network_slows_epoch(self):
        cfg = CFG.with_(feature_cache_bytes=0.0)
        fast = MultiMachineDSP(cfg, num_machines=2,
                               network=NetworkSpec(bandwidth=100e9))
        slow = MultiMachineDSP(cfg, num_machines=2,
                               network=NetworkSpec(bandwidth=1e8))
        a = fast.run_epoch(max_batches=3, functional=False)
        b = slow.run_epoch(max_batches=3, functional=False)
        assert b.epoch_time > a.epoch_time

    def test_invalid_machine_count(self):
        with pytest.raises(ConfigError):
            MultiMachineDSP(CFG, num_machines=0)
