"""Tests for the multi-instance worker support in the pipeline runner."""

import numpy as np
import pytest

from repro.core.cost import OpCost
from repro.core.pipeline import PipelineRunner
from repro.hw import Cluster
from repro.utils import ConfigError

K = 2


def kernel(dur):
    return OpCost(label="k", per_gpu=np.full(K, dur), stage=dur, threads=256)


def collective(dur):
    return OpCost(label="c", per_gpu=np.full(K, dur), stage=dur, threads=128,
                  collective=True)


def batches(n, s=1.0, l=0.3, t=0.3):
    return [
        {"sample": [collective(s)], "load": [collective(l)],
         "train": [kernel(t)]}
        for _ in range(n)
    ]


@pytest.fixture
def cluster():
    return Cluster.dgx1(K)


class TestMultiWorker:
    def test_two_samplers_break_the_sampler_bottleneck(self, cluster):
        """With the sampler as bottleneck, a second instance overlaps
        consecutive batches' sampling collectives."""
        b = batches(10, s=1.0, l=0.1, t=0.1)
        one = PipelineRunner(cluster, b, sampler_workers=1).run()
        two = PipelineRunner(cluster, b, sampler_workers=2).run()
        assert two.epoch_time < 0.75 * one.epoch_time

    def test_completes_with_many_workers(self, cluster):
        b = batches(12)
        res = PipelineRunner(cluster, b, sampler_workers=3,
                             loader_workers=2).run()
        assert res.epoch_time > 0

    def test_trainer_stays_in_order(self, cluster):
        """BSP: the trainer consumes batches 0..B-1 in order even when
        loaders finish out of order — total time must cover them all."""
        # loader 0's batches are slow, loader 1's fast
        b = []
        for t in range(6):
            l_dur = 1.0 if t % 2 == 0 else 0.05
            b.append({"sample": [kernel(0.05)],
                      "load": [collective(l_dur)],
                      "train": [kernel(0.2)]})
        res = PipelineRunner(cluster, b, loader_workers=2).run()
        # 3 slow loads of 1.0 dominate; all 6 train kernels (1.2) follow
        # partially overlapped: wall must be >= slow-load chain
        assert res.epoch_time >= 3 * 1.0

    def test_trainer_consumes_in_batch_order(self, cluster):
        """The trace proves the ordering: with two out-of-order loaders
        the trainer's spans still carry batch tags 0..B-1 ascending."""
        from repro.obs import Tracer

        b = []
        for t in range(8):
            l_dur = 0.8 if t % 2 == 0 else 0.05
            b.append({"sample": [kernel(0.05)],
                      "load": [collective(l_dur)],
                      "train": [kernel(0.1)]})
        tr = Tracer()
        PipelineRunner(cluster, b, loader_workers=2, tracer=tr).run()
        for g in range(K):
            trained = sorted(
                tr.spans(cat="train", track=f"trainer-gpu{g}"),
                key=lambda ev: ev.start,
            )
            assert [ev.args["batch"] for ev in trained] == list(range(8))
        # and the loads really did run on two interleaved worker tracks
        load_tracks = {ev.track for ev in tr.spans(cat="load")}
        assert load_tracks == {f"loader{w}-gpu{g}"
                               for w in range(2) for g in range(K)}

    def test_worker_counts_validated(self, cluster):
        with pytest.raises(ConfigError):
            PipelineRunner(cluster, batches(2), sampler_workers=0)

    def test_single_worker_unchanged(self, cluster):
        """workers=1 must be byte-identical to the original pipeline."""
        b = batches(8)
        a = PipelineRunner(cluster, b).run()
        c = PipelineRunner(cluster, b, sampler_workers=1,
                           loader_workers=1).run()
        assert a.epoch_time == pytest.approx(c.epoch_time)
