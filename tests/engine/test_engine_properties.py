"""Property-based tests for the execution engine and pipeline."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.cost import OpCost
from repro.core.pipeline import PipelineRunner
from repro.engine import BoundedQueue, Resource, Simulator, Timeout
from repro.hw import Cluster

K = 2


@st.composite
def random_batches(draw, max_batches=6):
    n = draw(st.integers(1, max_batches))
    batches = []
    for _ in range(n):
        def op(collective):
            dur = draw(st.floats(0.01, 1.0))
            return OpCost(
                label="x",
                per_gpu=np.full(K, dur),
                stage=dur,
                threads=draw(st.sampled_from([128, 512, 2048])),
                collective=collective,
            )

        batches.append({
            "sample": [op(True)],
            "load": [op(True)],
            "train": [op(False)],
        })
    return batches


class TestPipelineProperties:
    @given(random_batches())
    @settings(max_examples=25, deadline=None)
    def test_pipeline_never_slower_than_sequential(self, batches):
        """For any workload, overlapping can only help (same resources,
        same ops, fewer barriers)."""
        cluster = Cluster.dgx1(K)
        seq = PipelineRunner(cluster, batches, sequential=True).run()
        pipe = PipelineRunner(cluster, batches).run()
        assert pipe.epoch_time <= seq.epoch_time * (1 + 1e-9)

    @given(random_batches())
    @settings(max_examples=25, deadline=None)
    def test_pipeline_bounded_below_by_critical_path(self, batches):
        """Wall time is at least every single stage chain's total."""
        cluster = Cluster.dgx1(K)
        pipe = PipelineRunner(cluster, batches).run()
        for stage in ("sample", "load", "train"):
            chain = sum(c.stage for b in batches for c in b[stage])
            assert pipe.epoch_time >= chain - 1e-9

    @given(random_batches(), st.integers(1, 3), st.integers(1, 3))
    @settings(max_examples=15, deadline=None)
    def test_multi_worker_never_deadlocks_with_ccc(self, batches, sw, lw):
        cluster = Cluster.dgx1(K)
        res = PipelineRunner(
            cluster, batches, sampler_workers=sw, loader_workers=lw
        ).run()
        assert res.epoch_time > 0


class TestEngineProperties:
    @given(st.lists(st.tuples(st.integers(1, 5), st.floats(0.1, 2.0)),
                    min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_resource_conservation(self, jobs):
        """After all acquire/release pairs complete, usage is zero and
        occupancy is within [0, 1]."""
        sim = Simulator()
        r = Resource(sim, capacity=5)

        def proc(n, dur):
            yield r.acquire(n)
            yield Timeout(dur)
            r.release(n)

        for n, dur in jobs:
            sim.spawn(proc(n, dur))
        total = sim.run()
        assert r.used == 0
        eps = 1e-9  # float accumulation over time integrals
        assert -eps <= r.occupancy(total) <= 1.0 + eps
        assert r.busy_fraction(total) <= 1.0 + eps

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=20),
           st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_queue_preserves_fifo(self, items, capacity):
        sim = Simulator()
        q = BoundedQueue(sim, capacity=capacity)
        got = []

        def producer():
            for x in items:
                yield q.put(x)

        def consumer():
            for _ in items:
                v = yield q.get()
                got.append(v)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert got == items
