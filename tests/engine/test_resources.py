"""Tests for resources, queues and rendezvous barriers."""

import pytest

from repro.engine import BoundedQueue, Rendezvous, Resource, Simulator, Timeout
from repro.utils import DeadlockError, ReproError


class TestResource:
    def test_acquire_release(self):
        sim = Simulator()
        r = Resource(sim, capacity=10)
        done = []

        def proc():
            yield r.acquire(6)
            yield Timeout(1.0)
            r.release(6)
            done.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert done == [pytest.approx(1.0)]
        assert r.used == 0

    def test_contention_serializes(self):
        sim = Simulator()
        r = Resource(sim, capacity=10)
        starts = []

        def proc(name):
            yield r.acquire(8)
            starts.append((name, sim.now))
            yield Timeout(1.0)
            r.release(8)

        sim.spawn(proc("a"))
        sim.spawn(proc("b"))
        sim.run()
        assert starts[0] == ("a", pytest.approx(0.0))
        assert starts[1] == ("b", pytest.approx(1.0))

    def test_fifo_head_of_line_blocking(self):
        """A big waiter at the head blocks a small one behind it."""
        sim = Simulator()
        r = Resource(sim, capacity=10)
        starts = []

        def holder():
            yield r.acquire(6)
            yield Timeout(2.0)
            r.release(6)

        def big():
            yield Timeout(0.1)
            yield r.acquire(8)  # cannot fit until holder releases
            starts.append(("big", sim.now))
            r.release(8)

        def small():
            yield Timeout(0.2)
            yield r.acquire(2)  # would fit, but FIFO blocks it behind big
            starts.append(("small", sim.now))
            r.release(2)

        sim.spawn(holder())
        sim.spawn(big())
        sim.spawn(small())
        sim.run()
        assert starts[0][0] == "big"
        assert starts[0][1] == pytest.approx(2.0)

    def test_occupancy_accounting(self):
        sim = Simulator()
        r = Resource(sim, capacity=10)

        def proc():
            yield r.acquire(5)
            yield Timeout(4.0)
            r.release(5)
            yield Timeout(6.0)

        sim.spawn(proc())
        sim.run()
        assert r.occupancy() == pytest.approx(0.5 * 0.4)
        assert r.busy_fraction() == pytest.approx(0.4)

    def test_metric_reads_are_idempotent(self):
        """Regression: occupancy()/busy_fraction() both call _account;
        reading them repeatedly (or in either order) at one timestamp
        must not perturb the integrals — the zero-width slice is
        skipped outright rather than integrated."""
        sim = Simulator()
        r = Resource(sim, capacity=10)

        def proc():
            yield r.acquire(5)
            yield Timeout(4.0)
            r.release(5)
            yield Timeout(6.0)

        sim.spawn(proc())
        sim.run()
        first = (r.occupancy(), r.busy_fraction())
        for _ in range(3):
            assert r.busy_fraction() == pytest.approx(first[1])
            assert r.occupancy() == pytest.approx(first[0])
        assert r._area == pytest.approx(5 * 4.0)
        assert r._busy == pytest.approx(4.0)

    def test_same_timestamp_churn_does_not_account(self):
        """Acquire+release pairs at one event time are zero-width: the
        accounting integrals and busy fraction must ignore them."""
        sim = Simulator()
        r = Resource(sim, capacity=10)

        def proc():
            yield Timeout(1.0)
            for _ in range(5):  # same-timestamp churn
                yield r.acquire(10)
                r.release(10)
            yield Timeout(1.0)

        sim.spawn(proc())
        sim.run()
        assert r.occupancy() == pytest.approx(0.0)
        assert r.busy_fraction() == pytest.approx(0.0)

    def test_over_capacity_rejected(self):
        sim = Simulator()
        r = Resource(sim, capacity=4)
        with pytest.raises(ReproError):
            r.acquire(5)

    def test_bad_release(self):
        sim = Simulator()
        r = Resource(sim, capacity=4)
        with pytest.raises(ReproError):
            r.release(1)

    def test_deadlock_detected_when_never_released(self):
        sim = Simulator()
        r = Resource(sim, capacity=4)

        def hog():
            yield r.acquire(4)
            # never releases, never ends -- second process can't proceed
            yield r.acquire(1)

        sim.spawn(hog())
        with pytest.raises(DeadlockError) as err:
            sim.run()
        assert "acquire" in str(err.value)


class TestBoundedQueue:
    def test_put_get_order(self):
        sim = Simulator()
        q = BoundedQueue(sim, capacity=4)
        got = []

        def producer():
            for i in range(4):
                yield q.put(i)

        def consumer():
            for _ in range(4):
                item = yield q.get()
                got.append(item)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert got == [0, 1, 2, 3]

    def test_capacity_blocks_producer(self):
        """A fast producer is throttled to capacity ahead of the consumer."""
        sim = Simulator()
        q = BoundedQueue(sim, capacity=2)
        produced = []

        def producer():
            for i in range(6):
                yield q.put(i)
                produced.append((i, round(sim.now, 3)))

        def consumer():
            for _ in range(6):
                yield q.get()
                yield Timeout(1.0)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        # items 0..2 go immediately (2 buffered + 1 handed over),
        # after that one put completes per consumer cycle
        times = dict(produced)
        assert times[0] == 0 and times[1] == 0 and times[2] == 0
        assert times[3] >= 1.0 and times[5] > times[4] >= times[3]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        q = BoundedQueue(sim, capacity=1)
        got = []

        def consumer():
            item = yield q.get()
            got.append((item, sim.now))

        def producer():
            yield Timeout(5.0)
            yield q.put("x")

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert got == [("x", pytest.approx(5.0))]

    def test_total_put_counted_once(self):
        sim = Simulator()
        q = BoundedQueue(sim, capacity=1)

        def producer():
            for i in range(5):
                yield q.put(i)

        def consumer():
            for _ in range(5):
                yield q.get()

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert q.total_put == 5

    def test_zero_capacity_rejected(self):
        with pytest.raises(ReproError):
            BoundedQueue(Simulator(), capacity=0)


class TestRendezvous:
    def test_all_arrive_together(self):
        sim = Simulator()
        b = Rendezvous(sim)
        times = []

        def proc(delay):
            yield Timeout(delay)
            yield b.arrive("t0", 3)
            times.append(sim.now)

        for d in (1.0, 2.0, 5.0):
            sim.spawn(proc(d))
        sim.run()
        assert times == [pytest.approx(5.0)] * 3

    def test_tags_independent(self):
        sim = Simulator()
        b = Rendezvous(sim)
        done = []

        def proc(tag, n, delay):
            yield Timeout(delay)
            yield b.arrive(tag, n)
            done.append((tag, sim.now))

        sim.spawn(proc("a", 2, 1.0))
        sim.spawn(proc("a", 2, 2.0))
        sim.spawn(proc("b", 1, 0.5))
        sim.run()
        assert ("b", pytest.approx(0.5)) in done
        assert ("a", pytest.approx(2.0)) in done

    def test_missing_peer_deadlocks(self):
        sim = Simulator()
        b = Rendezvous(sim)

        def proc():
            yield b.arrive("never", 2)

        sim.spawn(proc())
        with pytest.raises(DeadlockError):
            sim.run()

    def test_bad_expected(self):
        b = Rendezvous(Simulator())
        with pytest.raises(ReproError):
            b.arrive("t", 0)
