"""Bit-identical equivalence of the two scheduler cores.

The bucketed calendar core (the default) must dispatch events in
exactly the order of the legacy ``(time, seq)`` heap core — same event
log, same final clock, same ``events_processed``, same deadlock
forensics.  These tests drive *randomly generated programs* (mixed
timeouts with heavily duplicated timestamps, queue put/get chains,
resource hold/release, schedule/resume callbacks, ``until`` cutoffs,
and deliberately deadlocking shapes) through both cores and compare
everything observable.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import BoundedQueue, Resource, Simulator, Timeout
from repro.utils import DeadlockError

#: quantized delays: many events share a timestamp, which is exactly
#: the case the bucketed core optimizes (and where ordering bugs hide)
DELAYS = (0.0, 0.1, 0.1, 0.2, 0.3)


def _random_program(rng: random.Random, max_procs: int = 6,
                    max_ops: int = 8) -> dict:
    """A program spec: queues, resources, and per-process op lists."""
    num_queues = rng.randint(1, 3)
    num_resources = rng.randint(1, 2)
    procs = []
    for _ in range(rng.randint(2, max_procs)):
        ops = []
        for _ in range(rng.randint(1, max_ops)):
            kind = rng.choice(("sleep", "put", "get", "hold", "timer"))
            if kind == "sleep":
                ops.append(("sleep", rng.choice(DELAYS)))
            elif kind == "put":
                ops.append(("put", rng.randrange(num_queues), rng.random()))
            elif kind == "get":
                ops.append(("get", rng.randrange(num_queues)))
            elif kind == "hold":
                ops.append(("hold", rng.randrange(num_resources),
                            rng.randint(1, 3), rng.choice(DELAYS)))
            else:  # schedule a bare callback
                ops.append(("timer", rng.choice(DELAYS)))
        procs.append(ops)
    return {
        "queues": num_queues,
        "resources": num_resources,
        "procs": procs,
    }


def _run_program(program: dict, use_heap: bool, until=None,
                 tracer=None):
    """Execute a program spec on one core; returns every observable:
    the event log, final clock, events_processed, and the deadlock
    message (None if the run completed)."""
    sim = Simulator(tracer=tracer, use_heap_scheduler=use_heap)
    queues = [BoundedQueue(sim, 2, name=f"q{i}")
              for i in range(program["queues"])]
    resources = [Resource(sim, capacity=3, name=f"r{i}")
                 for i in range(program["resources"])]
    log = []

    def worker(pid, ops):
        for oi, op in enumerate(ops):
            kind = op[0]
            if kind == "sleep":
                yield Timeout(op[1])
            elif kind == "put":
                yield queues[op[1]].put((pid, op[2]))
            elif kind == "get":
                got = yield queues[op[1]].get()
                log.append((round(sim.now, 9), pid, oi, "got", got))
            elif kind == "hold":
                _, ri, n, dur = op
                yield resources[ri].acquire(n)
                yield Timeout(dur)
                resources[ri].release(n)
            elif kind == "timer":
                sim.schedule(op[1],
                             lambda p=pid, o=oi:
                             log.append((round(sim.now, 9), p, o, "cb")))
            log.append((round(sim.now, 9), pid, oi, kind))

    for pid, ops in enumerate(program["procs"]):
        sim.spawn(worker(pid, ops), name=f"w{pid}")

    deadlock = None
    try:
        sim.run(until=until)
    except DeadlockError as err:
        deadlock = (str(err), dict(err.waiting))
    return {
        "log": log,
        "now": sim.now,
        "events": sim.events_processed,
        "deadlock": deadlock,
    }


def _assert_identical(program: dict, until=None):
    heap = _run_program(program, use_heap=True, until=until)
    bucket = _run_program(program, use_heap=False, until=until)
    assert bucket["log"] == heap["log"]
    assert bucket["now"] == heap["now"]  # bit-identical, not approx
    assert bucket["events"] == heap["events"]
    assert bucket["deadlock"] == heap["deadlock"]


class TestRandomPrograms:
    @pytest.mark.parametrize("seed", range(40))
    def test_seeded_fuzz(self, seed):
        """Random schedule/resume/Timeout mixes dispatch identically."""
        _assert_identical(_random_program(random.Random(seed)))

    @pytest.mark.parametrize("seed", range(20))
    def test_seeded_fuzz_with_until(self, seed):
        """``until`` cutoffs stop both cores at the same instant with
        the same events dispatched."""
        rng = random.Random(1000 + seed)
        program = _random_program(rng)
        _assert_identical(program, until=rng.choice((0.0, 0.1, 0.25, 1.0)))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_hypothesis_fuzz(self, seed):
        _assert_identical(_random_program(random.Random(seed)))


class TestDuplicateTimestamps:
    def test_zero_delay_storm_is_fifo_on_both_cores(self):
        """Zero-delay chains scheduled during a dispatch batch run in
        scheduling order on both cores (the live-bucket append case)."""
        def program_log(use_heap):
            sim = Simulator(use_heap_scheduler=use_heap)
            order = []

            def chain(name, depth):
                for d in range(depth):
                    yield Timeout(0.0)
                    order.append((name, d, sim.now))

            for i in range(5):
                sim.spawn(chain(i, 4), name=f"c{i}")
            sim.run()
            return order, sim.events_processed

        heap_order, heap_ev = program_log(True)
        bucket_order, bucket_ev = program_log(False)
        assert bucket_order == heap_order
        assert bucket_ev == heap_ev

    def test_same_time_callbacks_interleave_identically(self):
        def run(use_heap):
            sim = Simulator(use_heap_scheduler=use_heap)
            hits = []
            for i in range(6):
                sim.schedule(0.5, lambda i=i: hits.append(i))
                sim.schedule(0.25 + 0.25, lambda i=i: hits.append(100 + i))
            sim.run()
            return hits

        assert run(False) == run(True)


class TestDeadlockForensics:
    def test_deadlock_message_identical(self):
        """Both cores name the same blocked processes with the same
        formatted waiting_on labels (the lazy descriptors render to the
        legacy strings)."""
        def run(use_heap):
            sim = Simulator(use_heap_scheduler=use_heap)
            q = BoundedQueue(sim, 1, name="stuckq")
            r = Resource(sim, capacity=1, name="sm")

            def getter():
                yield q.get()

            def hog():
                yield r.acquire(1)
                yield q.get()  # never satisfied -> holds r forever

            def blocked():
                yield Timeout(0.1)
                yield r.acquire(1)

            sim.spawn(getter(), name="getter")
            sim.spawn(hog(), name="hog")
            sim.spawn(blocked(), name="blocked")
            with pytest.raises(DeadlockError) as err:
                sim.run()
            return str(err.value), dict(err.value.waiting)

        heap_msg, heap_waiting = run(True)
        bucket_msg, bucket_waiting = run(False)
        assert bucket_msg == heap_msg
        assert bucket_waiting == heap_waiting
        assert heap_waiting["getter"] == "get(stuckq)"
        assert heap_waiting["blocked"] == "acquire(sm, 1)"


class TestTracedUntracedConsistency:
    """The bucketed core uses an inlined trampoline when untraced and
    the instrumented ``_step`` when traced — the observable event order
    must not depend on which one ran."""

    @pytest.mark.parametrize("seed", range(10))
    def test_tracer_does_not_change_order(self, seed):
        from repro.obs import Tracer

        program = _random_program(random.Random(2000 + seed))
        plain = _run_program(program, use_heap=False)
        traced = _run_program(program, use_heap=False, tracer=Tracer())
        assert traced["log"] == plain["log"]
        assert traced["now"] == plain["now"]
        assert traced["events"] == plain["events"]
        assert traced["deadlock"] == plain["deadlock"]


class TestEnvEscapeHatch:
    def test_env_var_selects_heap_core(self, monkeypatch):
        monkeypatch.setenv("REPRO_HEAP_SCHEDULER", "1")
        assert Simulator().use_heap_scheduler is True
        monkeypatch.setenv("REPRO_HEAP_SCHEDULER", "0")
        assert Simulator().use_heap_scheduler is False
        monkeypatch.delenv("REPRO_HEAP_SCHEDULER")
        assert Simulator().use_heap_scheduler is False
        # explicit argument wins over the environment
        monkeypatch.setenv("REPRO_HEAP_SCHEDULER", "1")
        assert Simulator(use_heap_scheduler=False).use_heap_scheduler is False
