"""Tests for the discrete-event simulator core."""

import pytest

from repro.engine import Simulator, Timeout
from repro.engine.simulator import Process
from repro.utils import ReproError


class TestEventLoop:
    def test_time_advances(self):
        sim = Simulator()
        seen = []

        def proc():
            yield Timeout(1.0)
            seen.append(sim.now)
            yield Timeout(2.0)
            seen.append(sim.now)

        sim.spawn(proc())
        assert sim.run() == pytest.approx(3.0)
        assert seen == [pytest.approx(1.0), pytest.approx(3.0)]

    def test_fifo_at_equal_times(self):
        sim = Simulator()
        order = []
        for i in range(5):
            def proc(i=i):
                yield Timeout(1.0)
                order.append(i)
            sim.spawn(proc())
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_subgenerator_call(self):
        sim = Simulator()
        out = []

        def child(x):
            yield Timeout(0.5)
            return x * 2

        def parent():
            v = yield child(21)
            out.append(v)

        sim.spawn(parent())
        sim.run()
        assert out == [42]

    def test_process_result(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)
            return "done"

        p = sim.spawn(proc())
        sim.run()
        assert p.done and p.result == "done"

    def test_negative_delay_rejected(self):
        with pytest.raises(ReproError):
            Timeout(-1.0)

    def test_unsupported_yield(self):
        sim = Simulator()

        def proc():
            yield 42

        sim.spawn(proc())
        with pytest.raises(ReproError):
            sim.run()

    def test_run_until(self):
        sim = Simulator()

        def proc():
            yield Timeout(10.0)

        sim.spawn(proc())
        assert sim.run(until=3.0) == pytest.approx(3.0)
        assert sim.unfinished

    def test_many_processes_interleave(self):
        sim = Simulator()
        log = []

        def proc(name, dt):
            for _ in range(3):
                yield Timeout(dt)
                log.append((name, round(sim.now, 6)))

        sim.spawn(proc("a", 1.0))
        sim.spawn(proc("b", 1.5))
        sim.run()
        assert ("a", 1.0) in log and ("b", 1.5) in log
        assert log.index(("a", 1.0)) < log.index(("b", 1.5))


class TestEventsProcessed:
    @pytest.mark.parametrize("use_heap", [False, True])
    def test_counts_every_dispatch(self, use_heap):
        sim = Simulator(use_heap_scheduler=use_heap)

        def proc():
            yield Timeout(1.0)
            yield Timeout(1.0)

        sim.spawn(proc())        # 1 spawn event + 2 timeout resumptions
        sim.schedule(0.5, lambda: None)   # 1 callback event
        sim.run()
        assert sim.events_processed == 4

    def test_counter_survives_until_cutoff(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)
            yield Timeout(10.0)

        sim.spawn(proc())
        sim.run(until=2.0)
        assert sim.events_processed == 2  # spawn + first timeout
        sim.run()
        assert sim.events_processed == 3

    def test_exported_to_metrics_registry(self):
        from repro.metrics import MetricsRegistry

        reg = MetricsRegistry()
        sim = Simulator(metrics=reg)

        def proc():
            yield Timeout(1.0)

        sim.spawn(proc())
        sim.run()
        counters = {
            (i["name"],): i for i in reg.to_dict()["instruments"]
            if i["name"] == "engine_events"
        }
        assert counters[("engine_events",)]["total"] == sim.events_processed


class TestLazyWaitingOn:
    def test_blocked_timeout_formats_on_demand(self):
        sim = Simulator()

        def proc():
            yield Timeout(2.5)

        p = sim.spawn(proc())
        sim.run(until=1.0)
        # raw descriptor is the request itself; property renders legacy label
        assert isinstance(p._wait, Timeout)
        assert p.waiting_on == "timeout(2.5)"
        assert "timeout(2.5)" in repr(p)

    def test_waiting_on_accepts_legacy_strings(self):
        # third-party primitives may still assign preformatted strings
        p = Process("x", iter(()))
        p.waiting_on = "custom(wait)"
        assert p.waiting_on == "custom(wait)"
        p.waiting_on = None
        assert p.waiting_on is None

    def test_unblocked_process_has_no_label(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)

        p = sim.spawn(proc())
        sim.run()
        assert p.waiting_on is None and p.done


class TestSchedulerSelection:
    def test_default_is_bucketed(self, monkeypatch):
        monkeypatch.delenv("REPRO_HEAP_SCHEDULER", raising=False)
        assert Simulator().use_heap_scheduler is False

    def test_flag_selects_heap(self):
        sim = Simulator(use_heap_scheduler=True)
        assert sim.use_heap_scheduler is True

        def proc():
            yield Timeout(1.0)

        sim.spawn(proc())
        assert sim.run() == pytest.approx(1.0)
