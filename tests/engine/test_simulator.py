"""Tests for the discrete-event simulator core."""

import pytest

from repro.engine import Simulator, Timeout
from repro.utils import ReproError


class TestEventLoop:
    def test_time_advances(self):
        sim = Simulator()
        seen = []

        def proc():
            yield Timeout(1.0)
            seen.append(sim.now)
            yield Timeout(2.0)
            seen.append(sim.now)

        sim.spawn(proc())
        assert sim.run() == pytest.approx(3.0)
        assert seen == [pytest.approx(1.0), pytest.approx(3.0)]

    def test_fifo_at_equal_times(self):
        sim = Simulator()
        order = []
        for i in range(5):
            def proc(i=i):
                yield Timeout(1.0)
                order.append(i)
            sim.spawn(proc())
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_subgenerator_call(self):
        sim = Simulator()
        out = []

        def child(x):
            yield Timeout(0.5)
            return x * 2

        def parent():
            v = yield child(21)
            out.append(v)

        sim.spawn(parent())
        sim.run()
        assert out == [42]

    def test_process_result(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)
            return "done"

        p = sim.spawn(proc())
        sim.run()
        assert p.done and p.result == "done"

    def test_negative_delay_rejected(self):
        with pytest.raises(ReproError):
            Timeout(-1.0)

    def test_unsupported_yield(self):
        sim = Simulator()

        def proc():
            yield 42

        sim.spawn(proc())
        with pytest.raises(ReproError):
            sim.run()

    def test_run_until(self):
        sim = Simulator()

        def proc():
            yield Timeout(10.0)

        sim.spawn(proc())
        assert sim.run(until=3.0) == pytest.approx(3.0)
        assert sim.unfinished

    def test_many_processes_interleave(self):
        sim = Simulator()
        log = []

        def proc(name, dt):
            for _ in range(3):
                yield Timeout(dt)
                log.append((name, round(sim.now, 6)))

        sim.spawn(proc("a", 1.0))
        sim.spawn(proc("b", 1.5))
        sim.run()
        assert ("a", 1.0) in log and ("b", 1.5) in log
        assert log.index(("a", 1.0)) < log.index(("b", 1.5))
