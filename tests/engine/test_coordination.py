"""Tests for CCC: the Fig 8 deadlock and its fix.

The scenario from the paper: two workers per GPU (sampler and loader),
each running an all-to-all collective.  A collective kernel acquires SM
threads, then rendezvouses with its peers.  If GPU 0 launches sampler
first while GPU 1 launches loader first and neither has threads left
for the other kernel, the system deadlocks.  With the CCC launch gate,
all GPUs follow the leader's order and the deadlock disappears.
"""

import pytest

from repro.engine import (
    LaunchGate,
    Rendezvous,
    Resource,
    Simulator,
    Timeout,
)
from repro.utils import DeadlockError, ReproError

NUM_GPUS = 2
KERNEL_THREADS = 8


def collective_worker(sim, gpu, sms, barrier, gate, tag, start_delay, duration):
    """One worker's communication kernel, optionally CCC-gated."""
    yield Timeout(start_delay)
    if gate is not None:
        yield gate.wait_turn(gpu, tag)
    yield sms[gpu].acquire(KERNEL_THREADS)  # irrevocable SM allocation
    if gate is not None:
        gate.launched(gpu, tag)
    yield barrier.arrive(tag, NUM_GPUS)  # peers must all have launched
    yield Timeout(duration)
    sms[gpu].release(KERNEL_THREADS)


def build(gate_enabled: bool):
    sim = Simulator()
    # each GPU has room for exactly ONE communication kernel at a time
    sms = [Resource(sim, KERNEL_THREADS, name=f"gpu{g}") for g in range(NUM_GPUS)]
    barrier = Rendezvous(sim)
    gate = LaunchGate(sim, NUM_GPUS) if gate_enabled else None
    # GPU 0 reaches the sampler collective first; GPU 1 the loader first
    delays = {("sampler", 0): 0.0, ("loader", 0): 0.1,
              ("sampler", 1): 0.1, ("loader", 1): 0.0}
    for tag in ("sampler", "loader"):
        for gpu in range(NUM_GPUS):
            sim.spawn(
                collective_worker(
                    sim, gpu, sms, barrier, gate, tag, delays[(tag, gpu)], 1.0
                ),
                name=f"{tag}-gpu{gpu}",
            )
    return sim


class TestFig8Deadlock:
    def test_without_ccc_deadlocks(self):
        sim = build(gate_enabled=False)
        with pytest.raises(DeadlockError) as err:
            sim.run()
        # both GPUs are stuck: one kernel holds SMs at the barrier, the
        # other cannot acquire SMs
        assert len(err.value.waiting) >= 2

    def test_with_ccc_completes(self):
        sim = build(gate_enabled=True)
        t = sim.run()
        assert not sim.unfinished
        # the two collectives run back-to-back: ~2 time units
        assert t == pytest.approx(2.1, abs=0.2)


class TestLaunchGate:
    def test_leader_defines_order(self):
        sim = Simulator()
        gate = LaunchGate(sim, num_gpus=2)
        log = []

        def leader():
            yield gate.wait_turn(0, "B")
            gate.launched(0, "B")
            log.append("leader-B")
            yield gate.wait_turn(0, "A")
            gate.launched(0, "A")
            log.append("leader-A")

        def follower():
            # follower is ready for A first, but must launch B first
            yield gate.wait_turn(1, "A")
            gate.launched(1, "A")
            log.append("follower-A")

        def follower_b():
            yield Timeout(1.0)
            yield gate.wait_turn(1, "B")
            gate.launched(1, "B")
            log.append("follower-B")

        sim.spawn(leader())
        sim.spawn(follower())
        sim.spawn(follower_b())
        sim.run()
        assert log.index("follower-B") < log.index("follower-A")
        assert gate.order == ["B", "A"]

    def test_out_of_turn_launch_rejected(self):
        sim = Simulator()
        gate = LaunchGate(sim, num_gpus=2)
        gate._register("A")
        gate._register("B")
        with pytest.raises(ReproError):
            gate.launched(0, "B")

    def test_unknown_tag_rejected(self):
        sim = Simulator()
        gate = LaunchGate(sim, num_gpus=1)
        with pytest.raises(ReproError):
            gate.launched(0, "nope")

    def test_bad_leader(self):
        with pytest.raises(ReproError):
            LaunchGate(Simulator(), num_gpus=2, leader=5)

    def test_bad_gpu(self):
        gate = LaunchGate(Simulator(), num_gpus=2)
        with pytest.raises(ReproError):
            gate.wait_turn(7, "x")

    def test_follower_waits_for_registration(self):
        """A follower that is ready before the leader simply waits."""
        sim = Simulator()
        gate = LaunchGate(sim, num_gpus=2)
        times = []

        def follower():
            yield gate.wait_turn(1, "T")
            gate.launched(1, "T")
            times.append(sim.now)

        def leader():
            yield Timeout(3.0)
            yield gate.wait_turn(0, "T")
            gate.launched(0, "T")

        sim.spawn(follower())
        sim.spawn(leader())
        sim.run()
        assert times == [pytest.approx(3.0)]
