"""Tests for the cache stores."""

import numpy as np
import pytest

from repro.cache import NoCache, PartitionedCache, ReplicatedCache
from repro.cache.store import Placement
from repro.utils import ConfigError


@pytest.fixture
def setting():
    """12 nodes over 3 GPUs; hotness = ascending node id (0 hottest)."""
    part_offsets = np.array([0, 4, 8, 12])
    hot_order = np.arange(12)
    return part_offsets, hot_order


class TestPartitionedCache:
    def test_each_gpu_caches_its_own_hottest(self, setting):
        part_offsets, hot_order = setting
        c = PartitionedCache(part_offsets, hot_order, budget_nodes=2)
        assert c.cached_nodes(0).tolist() == [0, 1]
        assert c.cached_nodes(1).tolist() == [4, 5]
        assert c.cached_nodes(2).tolist() == [8, 9]
        assert c.total_cached == 6

    def test_aggregate_grows_with_gpus(self, setting):
        """The DSP claim: partitioned caching scales the aggregate."""
        part_offsets, hot_order = setting
        part = PartitionedCache(part_offsets, hot_order, budget_nodes=2)
        repl = ReplicatedCache(12, 3, hot_order, budget_nodes=2)
        assert part.total_cached == 3 * repl.total_cached

    def test_locate_classification(self, setting):
        part_offsets, hot_order = setting
        c = PartitionedCache(part_offsets, hot_order, budget_nodes=2)
        loc = c.locate(np.array([0, 4, 11]), gpu=0)
        assert loc.placement.tolist() == [
            Placement.LOCAL, Placement.REMOTE, Placement.COLD
        ]
        assert loc.holder.tolist() == [0, 1, -1]

    def test_zero_budget_all_cold(self, setting):
        part_offsets, hot_order = setting
        c = PartitionedCache(part_offsets, hot_order, budget_nodes=0)
        loc = c.locate(np.arange(12), gpu=1)
        assert loc.count(Placement.COLD) == 12

    def test_budget_above_part_size(self, setting):
        part_offsets, hot_order = setting
        c = PartitionedCache(part_offsets, hot_order, budget_nodes=100)
        assert c.total_cached == 12

    def test_cache_nbytes(self, setting):
        part_offsets, hot_order = setting
        c = PartitionedCache(part_offsets, hot_order, budget_nodes=2)
        assert c.cache_nbytes(0, feature_dim=10) == 2 * 10 * 4

    def test_invalid_args(self, setting):
        part_offsets, hot_order = setting
        with pytest.raises(ConfigError):
            PartitionedCache(part_offsets, hot_order, budget_nodes=-1)
        with pytest.raises(ConfigError):
            PartitionedCache(part_offsets, hot_order[:5], budget_nodes=1)


class TestReplicatedCache:
    def test_hits_always_local(self, setting):
        _, hot_order = setting
        c = ReplicatedCache(12, 3, hot_order, budget_nodes=4)
        for gpu in range(3):
            loc = c.locate(np.array([0, 3, 5]), gpu=gpu)
            assert loc.placement.tolist() == [
                Placement.LOCAL, Placement.LOCAL, Placement.COLD
            ]

    def test_same_set_every_gpu(self, setting):
        _, hot_order = setting
        c = ReplicatedCache(12, 3, hot_order, budget_nodes=4)
        assert np.array_equal(c.cached_nodes(0), c.cached_nodes(2))

    def test_global_hottest_selected(self, setting):
        _, hot_order = setting
        c = ReplicatedCache(12, 3, hot_order, budget_nodes=3)
        assert c.cached_nodes(0).tolist() == [0, 1, 2]


class TestNoCache:
    def test_everything_cold(self):
        c = NoCache(num_nodes=10, num_gpus=2)
        loc = c.locate(np.arange(10), gpu=0)
        assert loc.count(Placement.COLD) == 10
        assert len(c.cached_nodes(0)) == 0
        assert c.cache_nbytes(0, 64) == 0
