"""Tests for the profile-guided cache policy."""

import numpy as np
import pytest

from repro.cache.policies import HOT_POLICIES, rank_by_degree, rank_by_profile
from repro.graph import dcsbm_graph


@pytest.fixture(scope="module")
def graph():
    return dcsbm_graph(1500, 30_000, rng=8)


class TestProfilePolicy:
    def test_is_permutation(self, graph):
        order = rank_by_profile(graph, num_batches=3, batch_size=128, seed=0)
        assert np.array_equal(np.sort(order), np.arange(graph.num_nodes))

    def test_registered(self):
        assert "profile" in HOT_POLICIES

    def test_deterministic(self, graph):
        a = rank_by_profile(graph, num_batches=2, batch_size=64, seed=3)
        b = rank_by_profile(graph, num_batches=2, batch_size=64, seed=3)
        assert np.array_equal(a, b)

    def test_tracks_access_distribution(self, graph):
        """The profiled top set overlaps the degree top set strongly on
        a power-law graph (accesses follow degree)."""
        prof = set(rank_by_profile(graph, num_batches=6, seed=1)[:150].tolist())
        deg = set(rank_by_degree(graph)[:150].tolist())
        assert len(prof & deg) > 60

    def test_profiled_cache_hits_well(self, graph):
        """A profile-built cache must hit at least as well as random."""
        from repro.cache.store import ReplicatedCache, Placement
        from repro.sampling.local import GraphPatch, sample_neighbors

        patch = GraphPatch.full(graph)
        rng = np.random.default_rng(9)

        def hit_rate(order):
            store = ReplicatedCache(graph.num_nodes, 1, order,
                                    budget_nodes=150)
            hits = total = 0
            for _ in range(5):
                frontier = rng.integers(0, graph.num_nodes, size=128)
                src, _ = sample_neighbors(patch, frontier, 10, rng=rng)
                req = np.unique(src)
                loc = store.locate(req, 0)
                hits += loc.count(Placement.LOCAL)
                total += len(req)
            return hits / total

        prof = hit_rate(rank_by_profile(graph, num_batches=6, seed=2))
        rand = hit_rate(np.random.default_rng(0).permutation(graph.num_nodes))
        assert prof > 1.5 * rand
