"""Tests for hot-node ranking policies."""

import numpy as np
import pytest

from repro.cache import (
    HOT_POLICIES,
    rank_by_degree,
    rank_by_pagerank,
    rank_by_reverse_pagerank,
    rank_random,
)
from repro.cache.policies import get_policy
from repro.graph import CSRGraph, dcsbm_graph
from repro.utils import ConfigError


@pytest.fixture(scope="module")
def graph():
    return dcsbm_graph(1000, 20_000, rng=4)


class TestDegree:
    def test_sorted_descending(self, graph):
        order = rank_by_degree(graph)
        deg = graph.degrees[order]
        assert (np.diff(deg) <= 0).all()

    def test_is_permutation(self, graph):
        order = rank_by_degree(graph)
        assert np.array_equal(np.sort(order), np.arange(graph.num_nodes))


class TestPageRank:
    def test_star_graph_center_wins(self):
        """All edges point at node 0: it has the top PageRank."""
        src = np.arange(1, 20)
        dst = np.zeros(19, dtype=np.int64)
        g = CSRGraph.from_edges(src, dst, num_nodes=20)
        assert rank_by_pagerank(g)[0] == 0

    def test_reverse_pagerank_favors_sources(self):
        """Node 0 points at everyone: reverse PageRank ranks it first."""
        dst = np.arange(1, 20)
        src = np.zeros(19, dtype=np.int64)
        g = CSRGraph.from_edges(src, dst, num_nodes=20)
        assert rank_by_reverse_pagerank(g)[0] == 0
        assert rank_by_pagerank(g)[0] != 0

    def test_correlates_with_degree_on_powerlaw(self, graph):
        """On a power-law graph, PageRank's top set overlaps degree's."""
        top_pr = set(rank_by_pagerank(graph)[:100].tolist())
        top_deg = set(rank_by_degree(graph)[:100].tolist())
        assert len(top_pr & top_deg) > 30

    def test_is_permutation(self, graph):
        order = rank_by_pagerank(graph, iters=5)
        assert np.array_equal(np.sort(order), np.arange(graph.num_nodes))


class TestRandomAndRegistry:
    def test_random_is_permutation(self, graph):
        order = rank_random(graph, seed=1)
        assert np.array_equal(np.sort(order), np.arange(graph.num_nodes))

    def test_random_deterministic(self, graph):
        assert np.array_equal(rank_random(graph, seed=2), rank_random(graph, seed=2))

    def test_registry(self):
        assert set(HOT_POLICIES) == {
            "degree", "pagerank", "reverse_pagerank", "random", "profile"
        }
        assert get_policy("degree") is rank_by_degree

    def test_unknown_policy(self):
        with pytest.raises(ConfigError):
            get_policy("magic")
