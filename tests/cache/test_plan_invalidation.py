"""Plan-cache invalidation on placement change (store swap).

A cached :class:`~repro.cache.plan.FeaturePlan` encodes the placement
it was computed against — the local/remote/cold split and per-holder
rows.  If the loader's store is swapped (replica failover, topology
change) and a stale plan were served, the byte matrices would describe
the *old* layout.  These tests pin the invalidation hook and the
regression the hook prevents.
"""

import numpy as np

from repro.cache.loader import FeatureLoader
from repro.cache.store import PartitionedCache, ReplicatedCache


def _setup(num_nodes: int = 64, k: int = 2):
    rng = np.random.default_rng(0)
    features = rng.normal(size=(num_nodes, 4)).astype(np.float32)
    offsets = np.linspace(0, num_nodes, k + 1).astype(np.int64)
    hot = np.arange(num_nodes)
    store_a = PartitionedCache(offsets, hot, budget_nodes=num_nodes // 4)
    store_b = ReplicatedCache(num_nodes, k, hot, budget_nodes=8)
    requests = [rng.integers(0, num_nodes, size=16) for _ in range(k)]
    return features, store_a, store_b, requests


class TestInvalidation:
    def test_rebind_store_invalidates(self):
        features, store_a, store_b, requests = _setup()
        loader = FeatureLoader(features, store_a)
        loader.load(requests)
        assert loader.plan_cache.stats()["invalidations"] == 0
        assert len(loader.plan_cache) > 0
        loader.rebind_store(store_b)
        assert loader.plan_cache.stats()["invalidations"] == 1
        assert len(loader.plan_cache) == 0

    def test_direct_assignment_caught_on_next_load(self):
        """Swapping ``loader.store`` without the helper must still
        invalidate before any plan is served."""
        features, store_a, store_b, requests = _setup()
        loader = FeatureLoader(features, store_a)
        loader.load(requests)
        loader.store = store_b
        loader.load(requests)
        assert loader.plan_cache.stats()["invalidations"] == 1

    def test_stale_plans_never_served(self):
        """The regression the hook prevents: after a store swap the
        loader's traces must match a fresh loader on the new store."""
        features, store_a, store_b, requests = _setup()
        loader = FeatureLoader(features, store_a)
        loader.load(requests)  # warm plans against store A
        loader.rebind_store(store_b)
        _, trace_swapped, stats_swapped = loader.load(requests)

        fresh = FeatureLoader(features, store_b)
        _, trace_fresh, stats_fresh = fresh.load(requests)
        assert stats_swapped == stats_fresh
        group_a = next(iter(trace_swapped))
        group_b = next(iter(trace_fresh))
        for branch_a, branch_b in zip(group_a.branches, group_b.branches):
            for op_a, op_b in zip(branch_a, branch_b):
                if hasattr(op_a, "matrix"):
                    assert np.array_equal(op_a.matrix, op_b.matrix)

    def test_same_store_never_invalidates(self):
        features, store_a, _, requests = _setup()
        loader = FeatureLoader(features, store_a)
        for _ in range(3):
            loader.load(requests)
        stats = loader.plan_cache.stats()
        assert stats["invalidations"] == 0
        assert stats["hits"] > 0

    def test_invalidate_preserves_counters(self):
        from repro.cache.plan import PlanCache

        cache = PlanCache()
        key = PlanCache.key(0, np.arange(4))
        assert cache.lookup(key) is None  # one miss
        cache.invalidate()
        stats = cache.stats()
        assert stats["invalidations"] == 1
        assert stats["misses"] == 1  # history preserved
        cache.reset()
        assert cache.stats()["invalidations"] == 0

    def test_disabled_cache_tolerates_swap(self):
        features, store_a, store_b, requests = _setup()
        loader = FeatureLoader(features, store_a, plan_cache=None)
        loader.load(requests)
        loader.rebind_store(store_b)
        loader.load(requests)  # must not raise
