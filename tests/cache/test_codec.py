"""Tests for cold-path feature compression codecs.

The codec contract (docs/caching.md): ``wire_row_bytes`` prices
non-local transfers, ``apply`` performs the functional quantization
roundtrip, and the no-codec path stays bit-identical to a loader built
before codecs existed.
"""

import numpy as np
import pytest

from repro.cache.codec import CODECS, Fp16Codec, Int8Codec, get_codec
from repro.cache.loader import FeatureLoader
from repro.cache.store import PartitionedCache
from repro.utils import ConfigError


class TestWireModel:
    def test_fp16_halves_payload(self):
        assert Fp16Codec().wire_row_bytes(128) == 256.0

    def test_int8_quarter_plus_header(self):
        assert Int8Codec().wire_row_bytes(128) == 128.0 + 8.0

    def test_lossless_resolves_to_none(self):
        assert get_codec(None) is None
        assert get_codec("none") is None
        assert get_codec("fp32") is None

    def test_instance_passthrough(self):
        codec = Fp16Codec()
        assert get_codec(codec) is codec

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError):
            get_codec("zstd")

    def test_registry_covers_cli_choices(self):
        assert {"none", "fp32", "fp16", "int8"} <= set(CODECS)


class TestRoundtrip:
    def test_fp16_error_bounded(self):
        rng = np.random.default_rng(0)
        rows = rng.normal(size=(32, 64)).astype(np.float32)
        out = Fp16Codec().apply(rows)
        assert out.dtype == rows.dtype
        # half precision: ~2^-11 relative error
        np.testing.assert_allclose(out, rows, rtol=1e-3, atol=1e-3)
        assert not np.array_equal(out, rows)  # actually lossy

    def test_int8_error_bounded_by_row_range(self):
        rng = np.random.default_rng(1)
        rows = (10 * rng.normal(size=(32, 64))).astype(np.float32)
        out = Int8Codec().apply(rows)
        span = rows.max(axis=1) - rows.min(axis=1)
        err = np.abs(out - rows).max(axis=1)
        assert (err <= span / 255.0 + 1e-6).all()

    def test_int8_constant_rows_exact(self):
        rows = np.full((4, 16), 3.25, dtype=np.float32)
        np.testing.assert_array_equal(Int8Codec().apply(rows), rows)

    def test_int8_empty_rows(self):
        rows = np.empty((0, 16), dtype=np.float32)
        assert Int8Codec().apply(rows).shape == (0, 16)


def _setup(n=64, k=2, dim=8, budget=8):
    rng = np.random.default_rng(2)
    offsets = np.linspace(0, n, k + 1).astype(np.int64)
    store = PartitionedCache(offsets, rng.permutation(n),
                             budget_nodes=budget)
    features = rng.normal(size=(n, dim)).astype(np.float32)
    requests = [rng.integers(0, n, size=24) for _ in range(k)]
    return features, store, requests


class TestLoaderIntegration:
    def test_no_codec_bit_identical(self):
        """codec=None and codec="none" are the exact pre-codec path."""
        features, store, requests = _setup()
        plain = FeatureLoader(features, store)
        none = FeatureLoader(features, store, codec="none")
        out_a, _, stats_a = plain.load(requests)
        out_b, _, stats_b = none.load(requests)
        assert none.codec is None
        assert stats_a == stats_b
        for a, b in zip(out_a, out_b):
            np.testing.assert_array_equal(a, b)

    def test_local_rows_full_precision_misses_roundtripped(self):
        features, store, requests = _setup()
        loader = FeatureLoader(features, store, codec="fp16")
        out, _, _ = loader.load(requests)
        codec = Fp16Codec()
        for g, req in enumerate(requests):
            nodes = np.unique(req)
            loc = store.locate(nodes, g)
            exact = features[nodes]
            local = loc.placement == 0  # Placement.LOCAL
            np.testing.assert_array_equal(out[g][local], exact[local])
            np.testing.assert_array_equal(
                out[g][~local], codec.apply(exact[~local])
            )

    def test_codec_reduces_cold_and_remote_bytes(self):
        features, store, requests = _setup()
        plain = FeatureLoader(features, store)
        fp16 = FeatureLoader(features, store, codec="fp16")
        _, _, stats_a = plain.load(requests)
        _, _, stats_b = fp16.load(requests)
        assert stats_b["cold"] == stats_a["cold"]
        assert stats_b["cold_bytes"] == stats_a["cold_bytes"] / 2
        assert stats_b["remote_bytes"] == stats_a["remote_bytes"] / 2
        assert stats_b["local_bytes"] == stats_a["local_bytes"]

    def test_decode_kernel_priced_on_miss_rows(self):
        features, store, requests = _setup()
        loader = FeatureLoader(features, store, codec="int8")
        _, trace, stats = loader.load(requests)
        labels = [op.label for op in trace.ops]
        assert "feat-decode" in labels
        decode = trace.ops[labels.index("feat-decode")]
        misses = stats["remote"] + stats["cold"]
        assert decode.work.sum() == misses * loader.row_bytes
