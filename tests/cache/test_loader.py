"""Tests for the feature loaders."""

import numpy as np
import pytest

from repro.cache import (
    FeatureLoader,
    HostGatherLoader,
    NoCache,
    PartitionedCache,
    ReplicatedCache,
)
from repro.sampling.ops import (
    AllToAll,
    HostWork,
    ParallelGroup,
    PCIeCopy,
    UVAGather,
)
from repro.utils import ConfigError


@pytest.fixture
def setting():
    rng = np.random.default_rng(0)
    features = rng.normal(size=(12, 8)).astype(np.float32)
    part_offsets = np.array([0, 4, 8, 12])
    hot_order = np.arange(12)
    store = PartitionedCache(part_offsets, hot_order, budget_nodes=2)
    return features, store


class TestFeatureLoader:
    def test_functional_values_exact(self, setting):
        features, store = setting
        loader = FeatureLoader(features, store)
        reqs = [np.array([0, 4, 11]), np.array([5]), np.array([9, 9, 2])]
        out, _, _ = loader.load(reqs)
        assert np.array_equal(out[0], features[[0, 4, 11]])
        assert np.array_equal(out[2], features[[2, 9]])  # deduped + sorted

    def test_stats_classification(self, setting):
        features, store = setting
        loader = FeatureLoader(features, store)
        # gpu0 asks: 0 local-hot, 4 remote-hot, 11 cold
        _, _, stats = loader.load([np.array([0, 4, 11]),
                                   np.array([], dtype=np.int64),
                                   np.array([], dtype=np.int64)])
        assert {k: stats[k] for k in ("local", "remote", "cold")} == \
            {"local": 1, "remote": 1, "cold": 1}
        row = 8 * 4  # dim 8 x fp32
        assert stats["local_bytes"] == row
        assert stats["remote_bytes"] == row
        assert stats["cold_bytes"] == row

    def test_trace_parallel_hot_cold(self, setting):
        features, store = setting
        loader = FeatureLoader(features, store)
        _, trace, _ = loader.load([np.array([0, 4, 11]),
                                   np.array([], dtype=np.int64),
                                   np.array([], dtype=np.int64)])
        assert len(trace) == 1
        group = trace.ops[0]
        assert isinstance(group, ParallelGroup)
        assert len(group.branches) == 2

    def test_hot_bytes_exact(self, setting):
        features, store = setting
        loader = FeatureLoader(features, store)
        # gpu0 requests node 4 and 5, both cached on gpu1
        _, trace, _ = loader.load([np.array([4, 5]),
                                   np.array([], dtype=np.int64),
                                   np.array([], dtype=np.int64)])
        hot = [op for op in trace.flat_ops()
               if isinstance(op, AllToAll) and op.label == "feat-hot"]
        assert hot[0].matrix[1, 0] == 2 * 8 * 4  # 2 rows x dim 8 x fp32
        assert trace.nvlink_payload_bytes() == 2 * 8 * 4 + 2 * 8  # + id requests

    def test_cold_items_exact(self, setting):
        features, store = setting
        loader = FeatureLoader(features, store)
        _, trace, _ = loader.load([np.array([2, 3]),  # cold (budget=2/part)
                                   np.array([], dtype=np.int64),
                                   np.array([], dtype=np.int64)])
        cold = [op for op in trace.flat_ops() if isinstance(op, UVAGather)]
        assert cold[0].items[0] == 2
        assert trace.uva_payload_bytes() == 2 * 8 * 4

    def test_replicated_cache_no_nvlink(self, setting):
        features, _ = setting
        store = ReplicatedCache(12, 3, np.arange(12), budget_nodes=6)
        loader = FeatureLoader(features, store)
        _, trace, stats = loader.load([np.array([0, 5, 11])] * 3)
        assert trace.nvlink_payload_bytes() == 0
        assert stats["remote"] == 0
        assert stats["local"] == 3 * 2

    def test_nocache_all_uva(self, setting):
        features, _ = setting
        loader = FeatureLoader(features, NoCache(12, 3))
        _, trace, stats = loader.load([np.arange(12)] * 3)
        assert {k: stats[k] for k in ("local", "remote", "cold")} == \
            {"local": 0, "remote": 0, "cold": 36}
        assert trace.uva_payload_bytes() == 36 * 8 * 4

    def test_wrong_request_count(self, setting):
        features, store = setting
        with pytest.raises(ConfigError):
            FeatureLoader(features, store).load([np.array([0])])

    def test_bad_feature_shape(self, setting):
        _, store = setting
        with pytest.raises(ConfigError):
            FeatureLoader(np.zeros(5, dtype=np.float32), store)


class TestHostGatherLoader:
    def test_functional_and_trace(self):
        rng = np.random.default_rng(1)
        features = rng.normal(size=(10, 4)).astype(np.float32)
        loader = HostGatherLoader(features, num_gpus=2)
        out, trace, stats = loader.load([np.array([1, 3]), np.array([5])])
        assert np.array_equal(out[0], features[[1, 3]])
        kinds = [type(op) for op in trace]
        assert kinds == [HostWork, PCIeCopy]
        copy = trace.ops[1]
        assert copy.nbytes.tolist() == [2 * 16, 1 * 16]
        assert stats["cold"] == 3

    def test_gather_kind(self):
        features = np.zeros((4, 2), dtype=np.float32)
        loader = HostGatherLoader(features, num_gpus=1)
        _, trace, _ = loader.load([np.array([0])])
        assert trace.ops[0].kind == "gather"
