"""Tests for the access-frequency dynamic cache policy.

Covers the policy's contracts (docs/caching.md): windowed EWMA
promotion, per-patch budget preservation, workload-history warmup,
doorkeeper-gated frontier prefetch, hysteresis against churn, reset
between sweep points, and — the regression satellite — plan-cache
invalidation on every placement-changing batch.
"""

import numpy as np
import pytest

from repro.cache.dynamic import DynamicCacheConfig, DynamicCachePolicy
from repro.cache.loader import FeatureLoader
from repro.cache.store import PartitionedCache, ReplicatedCache
from repro.utils import ConfigError

N = 64
K = 2


def make_store(budget: int = 8, seed: int = 0) -> PartitionedCache:
    rng = np.random.default_rng(seed)
    offsets = np.linspace(0, N, K + 1).astype(np.int64)
    return PartitionedCache(offsets, rng.permutation(N), budget_nodes=budget)


def make_policy(budget: int = 8, **cfg) -> DynamicCachePolicy:
    cfg.setdefault("window", 2)
    cfg.setdefault("prefetch_quota", 0)
    cfg.setdefault("hysteresis", 0.0)
    return DynamicCachePolicy(make_store(budget), DynamicCacheConfig(**cfg))


def residents_per_patch(store: PartitionedCache) -> list[int]:
    return [len(store.cached_nodes(g)) for g in range(store.num_gpus)]


class TestConfig:
    @pytest.mark.parametrize("kw", [
        {"window": 0},
        {"ewma": 0.0},
        {"ewma": 1.5},
        {"max_moves": -1},
        {"prefetch_quota": -1},
        {"prior": -0.1},
        {"hysteresis": -0.1},
    ])
    def test_rejects_bad_knobs(self, kw):
        with pytest.raises(ConfigError):
            DynamicCacheConfig(**kw)

    def test_needs_partitioned_store(self):
        rep = ReplicatedCache(N, K, np.arange(N), budget_nodes=8)
        with pytest.raises(ConfigError):
            DynamicCachePolicy(rep)

    def test_warmup_id_out_of_range(self):
        with pytest.raises(ConfigError):
            make_policy().warm(np.array([N]))


class TestRebalance:
    def test_sustained_traffic_promotes(self):
        """Repeatedly-requested cold nodes displace idle residents
        after a window boundary."""
        policy = make_policy(budget=4, window=2, ewma=0.5)
        store = policy.store
        cold = np.array([n for n in range(8) if not store.cached[n]])[:2]
        for _ in range(2):
            policy.observe([cold, np.array([], dtype=np.int64)])
        assert store.cached[cold].all()
        assert policy.promotions >= len(cold)

    def test_budget_invariant(self):
        """Per-patch resident counts never drift from the planned
        budget, whatever the traffic does."""
        policy = make_policy(budget=6, window=1, prefetch_quota=4)
        store = policy.store
        before = residents_per_patch(store)
        rng = np.random.default_rng(7)
        for _ in range(12):
            reqs = [rng.integers(0, N, size=10) for _ in range(K)]
            policy.observe([np.unique(r) for r in reqs])
        assert residents_per_patch(store) == before

    def test_idle_policy_never_moves(self):
        """No traffic => the EWMA decays every score equally and the
        static-rank tie-break keeps the layout placement bit-stable."""
        policy = make_policy(budget=8, window=1)
        before = policy.store.cached.copy()
        empty = [np.array([], dtype=np.int64)] * K
        for _ in range(5):
            policy.observe(empty)
        np.testing.assert_array_equal(policy.store.cached, before)
        assert policy.promotions == 0 and policy.demotions == 0

    def test_hysteresis_blocks_marginal_swaps(self):
        """A challenger that beats the coldest resident by less than
        the margin stays out; with margin 0 it gets in."""
        for margin, expect_moved in ((10.0, False), (0.0, True)):
            policy = make_policy(budget=4, window=1, ewma=1.0,
                                 hysteresis=margin, prior=0.0)
            store = policy.store
            cold = np.array(
                [n for n in range(N // K) if not store.cached[n]][:1]
            )
            policy.observe([cold, np.array([], dtype=np.int64)])
            assert bool(store.cached[cold[0]]) is expect_moved

    def test_max_moves_caps_promotions(self):
        policy = make_policy(budget=4, window=1, ewma=1.0, max_moves=1,
                             prior=0.0)
        store = policy.store
        cold = np.array(
            [n for n in range(N // K) if not store.cached[n]][:3]
        )
        policy.observe([cold, np.array([], dtype=np.int64)])
        assert int(store.cached[cold].sum()) == 1

    def test_observe_returns_fill_counts(self):
        policy = make_policy(budget=4, window=1, ewma=1.0, prior=0.0)
        store = policy.store
        cold = np.array(
            [n for n in range(N // K) if not store.cached[n]][:2]
        )
        fill = policy.observe([cold, np.array([], dtype=np.int64)])
        assert fill.shape == (K,)
        assert fill[0] == len(cold) and fill[1] == 0
        assert policy.last_promoted == len(cold)
        assert policy.placement_changed


class TestWarmup:
    def test_warm_promotes_history_hot_nodes(self):
        policy = make_policy(budget=4, prior=0.0)
        store = policy.store
        hist_hot = np.array(
            [n for n in range(N // K) if not store.cached[n]][:3]
        )
        promoted = policy.warm(np.repeat(hist_hot, 5))
        assert store.cached[hist_hot].all()
        assert promoted >= len(hist_hot)

    def test_warm_rebaselines_and_zeroes_counters(self):
        policy = make_policy(budget=4, prior=0.0)
        policy.warm(np.arange(N // K))
        assert policy.stats() == {
            "promotions": 0, "demotions": 0, "rebalances": 0,
            "prefetches": 0, "loads": 0,
        }
        np.testing.assert_array_equal(
            policy._baseline_cached, policy.store.cached
        )


class TestPrefetch:
    def test_doorkeeper_blocks_first_touch(self):
        """A never-seen frontier node is not staged, however hot the
        request makes it look."""
        policy = make_policy(budget=4, window=100, prefetch_quota=8,
                             prior=0.0)
        store = policy.store
        cold = np.array(
            [n for n in range(N // K) if not store.cached[n]][:2]
        )
        policy.observe([cold, np.array([], dtype=np.int64)])
        assert not store.cached[cold].any()
        assert policy.prefetches == 0

    def test_seen_hot_node_staged_mid_window(self):
        """Once past the doorkeeper with score above the patch floor,
        a cold node is staged without waiting for the window."""
        policy = make_policy(budget=4, window=100, prefetch_quota=8,
                             prior=0.0)
        store = policy.store
        cold = np.array(
            [n for n in range(N // K) if not store.cached[n]][:2]
        )
        for _ in range(3):  # touch 1 (doorkeeper), then admit
            policy.observe([cold, np.array([], dtype=np.int64)])
        assert store.cached[cold].all()
        assert policy.prefetches >= len(cold)
        assert residents_per_patch(store)[0] == 4

    def test_quota_bounds_stagings_per_load(self):
        policy = make_policy(budget=8, window=100, prefetch_quota=2,
                             prior=0.0)
        store = policy.store
        cold = np.array(
            [n for n in range(N // K) if not store.cached[n]][:6]
        )
        policy.observe([cold, np.array([], dtype=np.int64)])
        policy.observe([cold, np.array([], dtype=np.int64)])
        assert int(store.cached[cold].sum()) == 2


class TestReset:
    def test_reset_restores_placement_and_scores(self):
        policy = make_policy(budget=4, window=1, ewma=1.0, prior=0.0)
        store = policy.store
        baseline = store.cached.copy()
        score0 = policy.score.copy()
        cold = np.array(
            [n for n in range(N // K) if not store.cached[n]][:2]
        )
        policy.observe([cold, np.array([], dtype=np.int64)])
        assert np.any(store.cached != baseline)
        policy.reset()
        np.testing.assert_array_equal(store.cached, baseline)
        np.testing.assert_array_equal(policy.score, score0)
        assert policy.stats()["loads"] == 0

    def test_on_change_fires_on_moves_only(self):
        events = []
        policy = make_policy(budget=4, window=1, ewma=1.0, prior=0.0)
        policy.on_change.append(lambda: events.append("moved"))
        empty = [np.array([], dtype=np.int64)] * K
        policy.observe(empty)
        assert events == []
        cold = np.array(
            [n for n in range(N // K) if not policy.store.cached[n]][:1]
        )
        policy.observe([cold, np.array([], dtype=np.int64)])
        assert events == ["moved"]
        policy.reset()
        assert events == ["moved", "moved"]


class TestPlanInvalidation:
    """Satellite regression: a placement-changing batch must invalidate
    the loader's plan cache — a stale plan describes the *old*
    local/remote/cold split."""

    def _loader(self, **cfg):
        rng = np.random.default_rng(1)
        store = make_store(budget=4)
        features = rng.normal(size=(N, 8)).astype(np.float32)
        cfg.setdefault("window", 1)
        cfg.setdefault("ewma", 1.0)
        cfg.setdefault("prior", 0.0)
        cfg.setdefault("prefetch_quota", 0)
        cfg.setdefault("hysteresis", 0.0)
        policy = DynamicCachePolicy(store, DynamicCacheConfig(**cfg))
        return FeatureLoader(features, store, dynamic=policy), store

    def test_promotion_batch_invalidates_plans(self):
        loader, store = self._loader()
        cold = np.array(
            [n for n in range(N // K) if not store.cached[n]][:2]
        )
        reqs = [cold, np.array([], dtype=np.int64)]
        loader.load(reqs)  # promotes `cold` -> plans must go
        assert loader.plan_cache.stats()["invalidations"] >= 1

    def test_stale_plan_never_reused_after_reshuffle(self):
        """The same request block is re-planned after a promotion: the
        rows it classified as cold are now served locally."""
        loader, store = self._loader()
        cold = np.array(
            [n for n in range(N // K) if not store.cached[n]][:2]
        )
        reqs = [cold, np.array([], dtype=np.int64)]
        _, _, stats_before = loader.load(reqs)
        assert stats_before["cold"] == len(cold)
        out, _, stats_after = loader.load(reqs)
        assert stats_after["cold"] == 0
        assert stats_after["local"] == len(cold)
        np.testing.assert_array_equal(out[0], loader.features[cold])

    def test_quiet_load_keeps_plans(self):
        """No placement change => the plan cache keeps serving."""
        loader, store = self._loader(window=100)
        hot = store.cached_nodes(0)[:2]
        reqs = [hot, np.array([], dtype=np.int64)]
        loader.load(reqs)
        loader.load(reqs)
        assert loader.plan_cache.stats()["hits"] >= 1
        assert loader.plan_cache.stats()["invalidations"] == 0


class TestDeterminism:
    def test_same_stream_same_placement(self):
        rng_a, rng_b = (np.random.default_rng(3) for _ in range(2))
        pols = [make_policy(budget=6, window=2, prefetch_quota=4)
                for _ in range(2)]
        for rng, policy in ((rng_a, pols[0]), (rng_b, pols[1])):
            for _ in range(9):
                reqs = [np.unique(rng.integers(0, N, size=12))
                        for _ in range(K)]
                policy.observe(reqs)
        np.testing.assert_array_equal(
            pols[0].store.cached, pols[1].store.cached
        )
        np.testing.assert_array_equal(pols[0].score, pols[1].score)
        assert pols[0].stats() == pols[1].stats()
