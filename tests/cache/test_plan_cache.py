"""Tests for the feature-path plan cache (:mod:`repro.cache.plan`)."""

import numpy as np
import pytest

from repro.cache import FeatureLoader, FeaturePlan, PlanCache, PartitionedCache
from repro.utils import ConfigError


def make_plan(n=4, k=2) -> FeaturePlan:
    return FeaturePlan(
        nodes=np.arange(n, dtype=np.int64),
        n_local=n, n_remote=0, n_cold=0,
        remote_row=np.zeros(k, dtype=np.int64),
    )


def make_loader(num_nodes=64, k=2, dim=4, budget=None, plan_cache=True):
    offsets = np.linspace(0, num_nodes, k + 1).astype(np.int64)
    if budget is None:
        budget = max(1, num_nodes // (2 * k))
    store = PartitionedCache(offsets, np.arange(num_nodes), budget)
    features = np.arange(num_nodes * dim, dtype=np.float32).reshape(
        num_nodes, dim
    )
    return FeatureLoader(features, store, plan_cache=plan_cache)


class TestPlanCacheBasics:
    def test_miss_then_hit(self):
        cache = PlanCache()
        key = PlanCache.key(0, np.arange(4, dtype=np.int64))
        assert cache.lookup(key) is None
        cache.store(key, make_plan())
        assert cache.lookup(key) is not None
        s = cache.stats()
        assert (s["hits"], s["misses"], s["entries"]) == (1, 1, 1)
        assert s["hit_rate"] == 0.5

    def test_key_is_gpu_and_bytes(self):
        req = np.arange(4, dtype=np.int64)
        assert PlanCache.key(0, req) != PlanCache.key(1, req)
        assert PlanCache.key(0, req) == PlanCache.key(0, req.copy())

    def test_entry_bound_evicts_lru(self):
        cache = PlanCache(max_entries=2)
        keys = [PlanCache.key(g, np.arange(4, dtype=np.int64))
                for g in range(3)]
        for k in keys:
            cache.store(k, make_plan())
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.lookup(keys[0]) is None  # the oldest went
        assert cache.lookup(keys[2]) is not None

    def test_lookup_refreshes_lru_order(self):
        cache = PlanCache(max_entries=2)
        k0 = PlanCache.key(0, np.arange(4, dtype=np.int64))
        k1 = PlanCache.key(1, np.arange(4, dtype=np.int64))
        cache.store(k0, make_plan())
        cache.store(k1, make_plan())
        cache.lookup(k0)  # touch: k1 becomes the LRU entry
        cache.store(PlanCache.key(2, np.arange(4, dtype=np.int64)),
                    make_plan())
        assert cache.lookup(k0) is not None
        assert cache.lookup(k1) is None

    def test_byte_bound_evicts(self):
        plan = make_plan(n=8)
        cost = plan.nbytes + len(np.arange(8, dtype=np.int64).tobytes())
        cache = PlanCache(max_entries=100, max_bytes=2 * cost)
        for g in range(3):
            cache.store(PlanCache.key(g, np.arange(8, dtype=np.int64)), plan)
        assert len(cache) == 2
        assert cache.stats()["nbytes"] <= cache.max_bytes

    def test_oversized_plan_not_stored(self):
        cache = PlanCache(max_bytes=8)
        cache.store(PlanCache.key(0, np.arange(64, dtype=np.int64)),
                    make_plan(n=64))
        assert len(cache) == 0

    def test_duplicate_store_refreshes_in_place(self):
        cache = PlanCache()
        key = PlanCache.key(0, np.arange(4, dtype=np.int64))
        cache.store(key, make_plan())
        before = cache.stats()["nbytes"]
        cache.store(key, make_plan())
        assert len(cache) == 1
        assert cache.stats()["nbytes"] == before

    def test_clear(self):
        cache = PlanCache()
        cache.store(PlanCache.key(0, np.arange(4, dtype=np.int64)),
                    make_plan())
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["nbytes"] == 0

    def test_bad_bounds_rejected(self):
        with pytest.raises(ConfigError):
            PlanCache(max_entries=0)
        with pytest.raises(ConfigError):
            PlanCache(max_bytes=0)


class TestLoaderEquivalence:
    def requests(self, num_nodes=64, k=2, seed=0):
        rng = np.random.default_rng(seed)
        return [rng.integers(0, num_nodes, size=24) for _ in range(k)]

    def test_cached_load_bit_identical_to_uncached(self):
        """The correctness contract: cache on/off changes nothing."""
        cached = make_loader(plan_cache=True)
        plain = make_loader(plan_cache=None)
        reqs = self.requests()
        for _ in range(3):  # round 2+ runs the hit path
            feats_c, trace_c, stats_c = cached.load(reqs)
            feats_p, trace_p, stats_p = plain.load(reqs)
            assert stats_c == stats_p
            for a, b in zip(feats_c, feats_p):
                np.testing.assert_array_equal(a, b)
            for op_c, op_p in zip(trace_c.ops, trace_p.ops):
                for br_c, br_p in zip(op_c.branches, op_p.branches):
                    for a, b in zip(br_c, br_p):
                        if hasattr(a, "matrix"):
                            np.testing.assert_array_equal(a.matrix, b.matrix)
        assert cached.plan_cache.hits > 0

    def test_repeat_blocks_hit(self):
        loader = make_loader()
        reqs = self.requests()
        loader.load(reqs)
        assert loader.plan_cache.stats()["hits"] == 0
        loader.load(reqs)
        s = loader.plan_cache.stats()
        assert s["hits"] == len(reqs)
        assert s["hit_rate"] == 0.5

    def test_different_blocks_miss(self):
        loader = make_loader()
        loader.load(self.requests(seed=0))
        loader.load(self.requests(seed=1))
        assert loader.plan_cache.stats()["hits"] == 0

    def test_plan_cache_flag_forms(self):
        assert make_loader(plan_cache=True).plan_cache is not None
        assert make_loader(plan_cache=False).plan_cache is None
        assert make_loader(plan_cache=None).plan_cache is None
        shared = PlanCache(max_entries=7)
        assert make_loader(plan_cache=shared).plan_cache is shared

    def test_empty_plan_cache_is_kept(self):
        """Regression: a fresh PlanCache is falsy (len 0) and must not
        be discarded by truthiness checks in the constructor."""
        loader = make_loader(plan_cache=PlanCache())
        assert loader.plan_cache is not None
        assert len(loader.plan_cache) == 0
