"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


ARGS = ["--dataset", "tiny", "--gpus", "2", "--hidden", "16",
        "--batch-size", "8", "--fanout", "5,3"]


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "products" in out and "NVLink" in out

    def test_train(self, capsys):
        assert main(["train", *ARGS, "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "epoch time" in out

    def test_train_cost_only_json(self, capsys):
        assert main(["train", *ARGS, "--epochs", "1",
                     "--cost-only", "--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("["):])
        assert payload[0]["epoch_time"] > 0
        assert payload[0]["loss"] is None  # cost-only: no training

    def test_compare_subset(self, capsys):
        assert main(["compare", *ARGS, "--systems", "DSP,DGL-UVA",
                     "--batches", "2", "--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert set(payload) == {"DSP", "DGL-UVA"}

    def test_train_out_writes_file_not_stdout(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        assert main(["train", *ARGS, "--epochs", "1", "--cost-only",
                     "--out", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"wrote {path}" in out
        assert "epoch_time" not in out  # the JSON went to the file
        payload = json.loads(path.read_text())
        assert payload[0]["epoch_time"] > 0

    def test_compare_out_writes_file(self, capsys, tmp_path):
        path = tmp_path / "table.json"
        assert main(["compare", *ARGS, "--systems", "DSP", "--batches", "2",
                     "--out", str(path)]) == 0
        assert f"wrote {path}" in capsys.readouterr().out
        assert set(json.loads(path.read_text())) == {"DSP"}

    def test_trace(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        text = tmp_path / "trace.txt"
        assert main(["trace", *ARGS, "--system", "DSP", "--batches", "2",
                     "--out", str(path), "--text", str(text)]) == 0
        out = capsys.readouterr().out
        assert f"wrote {path}" in out
        assert "busy" in out and "critical path" in out
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X", "C"} <= phases
        assert "==" in text.read_text()

    def test_infer(self, capsys):
        assert main(["infer", *ARGS, "--epochs", "1"]) == 0
        out = capsys.readouterr().out
        assert "full-graph inference" in out

    def test_infer_json(self, capsys):
        assert main(["infer", *ARGS, "--epochs", "1", "--json"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert len(payload["epochs"]) == 1
        assert 0.0 <= payload["inference"]["test_accuracy"] <= 1.0
        assert payload["inference"]["simulated_time_s"] > 0

    def test_infer_out_writes_file(self, capsys, tmp_path):
        path = tmp_path / "infer.json"
        assert main(["infer", *ARGS, "--epochs", "1",
                     "--out", str(path)]) == 0
        assert f"wrote {path}" in capsys.readouterr().out
        assert "inference" in json.loads(path.read_text())

    def test_serve(self, capsys):
        assert main(["serve", *ARGS, "--requests", "32",
                     "--qps", "2000,500", "--json"]) == 0
        out = capsys.readouterr().out
        assert "max sustainable QPS" in out
        payload = json.loads(out[out.index("{"):])
        points = payload["systems"]["DSP"]["points"]
        assert [p["offered_qps"] for p in points] == [500.0, 2000.0]
        assert "max_sustainable_qps" in payload["systems"]["DSP"]

    def test_serve_multi_system_out(self, capsys, tmp_path):
        path = tmp_path / "serve.json"
        assert main(["serve", *ARGS, "--systems", "DSP,DGL-UVA",
                     "--requests", "32", "--qps", "1000",
                     "--functional", "--out", str(path)]) == 0
        assert f"wrote {path}" in capsys.readouterr().out
        payload = json.loads(path.read_text())
        assert set(payload["systems"]) == {"DSP", "DGL-UVA"}
        acc = payload["systems"]["DSP"]["points"][0]["accuracy"]
        assert 0.0 <= acc <= 1.0

    def test_serve_bad_arrival_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--arrival", "uniform"])

    def test_perf_single_bench_out(self, capsys, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        assert main(["perf", "--quick", "--benches", "feature_load",
                     "--out", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"wrote {path}" in out and "speedup" in out
        payload = json.loads(path.read_text())
        assert payload["quick"] is True
        r = payload["benchmarks"]["feature_load"]
        assert r["wall_s_after"] > 0 and r["wall_s_before"] > 0
        assert r["speedup"] == pytest.approx(
            r["wall_s_before"] / r["wall_s_after"]
        )

    def test_perf_rejects_unknown_bench(self, tmp_path):
        from repro.utils import ConfigError

        with pytest.raises(ConfigError):
            main(["perf", "--quick", "--benches", "magic",
                  "--out", str(tmp_path / "x.json")])

    def test_parser_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--system", "magic"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
