"""Tests for the query-based fault injector.

Every injector answer must be a pure function of ``(plan, sim.now)``;
the tests drive ``sim.now`` by hand and assert the answers directly.
"""

import numpy as np
import pytest

from repro.chaos.faults import (
    CachePeerLoss,
    CollectiveDelay,
    CollectiveDrop,
    FaultPlan,
    GpuStraggler,
    LinkDegrade,
    LinkFlap,
    QueueStall,
    WorkerCrash,
)
from repro.chaos.injector import FaultInjector
from repro.engine import Simulator


def _cost(nvlink=0.0, pcie=0.0, network=0.0):
    from repro.core.cost import OpCost

    return OpCost(label="op", per_gpu=np.zeros(2), stage=0.1, threads=128,
                  collective=True, nvlink_bytes=nvlink, pcie_bytes=pcie,
                  network_bytes=network)


def _injector(*events):
    sim = Simulator()
    inj = FaultInjector(FaultPlan(tuple(events))).install(sim)
    return sim, inj


class TestComputeScale:
    def test_unbound_injector_uses_time_zero(self):
        inj = FaultInjector(FaultPlan((GpuStraggler(0.0, gpu=0,
                                                    slowdown=3.0),)))
        assert inj.sim is None
        assert inj.compute_scale(0) == pytest.approx(3.0)

    def test_active_window_only(self):
        sim, inj = _injector(GpuStraggler(1.0, gpu=0, duration=1.0,
                                          slowdown=4.0))
        assert inj.compute_scale(0) == 1.0
        sim.now = 1.5
        assert inj.compute_scale(0) == pytest.approx(4.0)
        assert inj.compute_scale(1) == 1.0  # other GPUs unaffected
        sim.now = 2.0
        assert inj.compute_scale(0) == 1.0

    def test_overlapping_stragglers_multiply(self):
        sim, inj = _injector(
            GpuStraggler(0.0, gpu=0, duration=2.0, slowdown=2.0),
            GpuStraggler(0.0, gpu=0, duration=2.0, slowdown=3.0),
        )
        sim.now = 1.0
        assert inj.compute_scale(0) == pytest.approx(6.0)


class TestCommScale:
    def test_degrade_applies_only_to_touched_links(self):
        sim, inj = _injector(LinkDegrade(0.0, link="nvlink", duration=1.0,
                                         factor=5.0))
        sim.now = 0.5
        assert inj.comm_scale(0, _cost(nvlink=1e6)) == pytest.approx(5.0)
        assert inj.comm_scale(0, _cost(pcie=1e6)) == 1.0
        assert inj.comm_scale(0, _cost()) == 1.0  # moves no bytes at all

    def test_max_combines_with_straggler(self):
        sim, inj = _injector(
            GpuStraggler(0.0, gpu=0, duration=1.0, slowdown=8.0),
            LinkDegrade(0.0, link="pcie", duration=1.0, factor=3.0),
        )
        sim.now = 0.5
        # the straggler dominates on gpu 0; the degrade on gpu 1
        assert inj.comm_scale(0, _cost(pcie=1e6)) == pytest.approx(8.0)
        assert inj.comm_scale(1, _cost(pcie=1e6)) == pytest.approx(3.0)


class TestBlackout:
    def test_wait_is_remaining_flap_window(self):
        sim, inj = _injector(LinkFlap(1.0, link="nvlink", duration=0.5))
        assert inj.blackout_wait(_cost(nvlink=1e6)) == 0.0  # before window
        sim.now = 1.2
        assert inj.blackout_wait(_cost(nvlink=1e6)) == pytest.approx(0.3)
        assert inj.blackout_wait(_cost(pcie=1e6)) == 0.0  # wrong link
        sim.now = 1.5
        assert inj.blackout_wait(_cost(nvlink=1e6)) == 0.0  # window over

    def test_longest_flap_wins(self):
        sim, inj = _injector(
            LinkFlap(0.0, link="nvlink", duration=0.2),
            LinkFlap(0.0, link="pcie", duration=0.6),
        )
        sim.now = 0.1
        assert inj.blackout_wait(
            _cost(nvlink=1e6, pcie=1e6)) == pytest.approx(0.5)


class TestWorkerFaults:
    def test_crash_latches_from_start_time(self):
        sim, inj = _injector(WorkerCrash(1.0, gpu=1, stage="train"))
        assert not inj.crashed(1, "train")
        sim.now = 1.0
        assert inj.crashed(1, "train")
        assert not inj.crashed(0, "train")
        assert not inj.crashed(1, "sample")
        sim.now = 100.0
        assert inj.crashed(1, "train")  # crashes are permanent

    def test_earliest_crash_wins(self):
        sim, inj = _injector(
            WorkerCrash(2.0, gpu=0, stage="sample"),
            WorkerCrash(0.5, gpu=0, stage="sample"),
        )
        sim.now = 1.0
        assert inj.crashed(0, "sample")

    def test_queue_stall_returns_remaining_window(self):
        sim, inj = _injector(QueueStall(1.0, gpu=0, stage="load",
                                        duration=0.4))
        assert inj.queue_stall(0, "load") == 0.0
        sim.now = 1.1
        assert inj.queue_stall(0, "load") == pytest.approx(0.3)
        assert inj.queue_stall(0, "train") == 0.0
        assert inj.queue_stall(1, "load") == 0.0


class TestCollectiveFaults:
    def test_delay_in_window(self):
        sim, inj = _injector(CollectiveDelay(0.0, gpu=0, duration=1.0,
                                             delay=0.25))
        sim.now = 0.5
        assert inj.collective_delay(0) == pytest.approx(0.25)
        assert inj.collective_delay(1) == 0.0
        sim.now = 1.5
        assert inj.collective_delay(0) == 0.0

    def test_drop_and_remaining_hang(self):
        sim, inj = _injector(CollectiveDrop(1.0, gpu=1, duration=0.5))
        assert not inj.collective_dropped(1)
        sim.now = 1.2
        assert inj.collective_dropped(1)
        assert not inj.collective_dropped(0)
        assert inj.drop_wait(1) == pytest.approx(0.3)
        assert inj.drop_wait(0) == 0.0


class TestCacheAndAccounting:
    def test_lost_peers_accumulate(self):
        sim, inj = _injector(CachePeerLoss(0.0, gpu=0),
                             CachePeerLoss(1.0, gpu=2))
        assert inj.lost_peers() == frozenset({0})
        sim.now = 1.0
        assert inj.lost_peers() == frozenset({0, 2})

    def test_injected_counts_and_has_faults(self):
        _, inj = _injector(GpuStraggler(0.0), GpuStraggler(0.5),
                           LinkFlap(0.0))
        assert inj.injected == {"gpu-straggler": 2, "link-flap": 1}
        assert inj.has_faults()
        assert not FaultInjector(FaultPlan()).has_faults()
