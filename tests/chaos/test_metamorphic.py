"""Metamorphic tests: timing-only faults must not change *what* runs.

Fault injection perturbs when kernels run, never what they compute:
under a plan of pure slowdowns (stragglers, link degradation, flaps,
collective delays) every functional output — CSP frontiers, sampled
blocks, op traces, loss and accuracy — must be bit-identical to the
fault-free run, on the flat-batch fast path and the chunked reference
implementation alike.  Only the simulated clock may differ.
"""

import numpy as np
import pytest

from repro.chaos import ChaosRuntime, FaultPlan
from repro.chaos.faults import (
    CollectiveDelay,
    GpuStraggler,
    LinkDegrade,
    LinkFlap,
)
from repro.core import RunConfig, build_system

CFG = RunConfig(dataset="tiny", num_gpus=2, hidden_dim=16, batch_size=8,
                fanout=(5, 3), seed=0)
BATCHES = 3

#: every timing-only fault kind, covering the whole (short) run
PURE_SLOWDOWN = FaultPlan((
    GpuStraggler(0.0, gpu=0, duration=1e3, slowdown=3.0),
    LinkDegrade(0.0, link="nvlink", duration=1e3, factor=4.0),
    LinkFlap(0.0, link="pcie", duration=1e-4),
    CollectiveDelay(0.0, gpu=1, duration=1e3, delay=1e-4),
))


def _capture_samples(system):
    """Record every (samples, trace) pair ``run_epoch`` draws."""
    captured = []
    orig = system._sample

    def wrapped(seeds_per_gpu):
        out = orig(seeds_per_gpu)
        captured.append(out)
        return out

    system._sample = wrapped
    return captured


def _run(system_name, fast_path, plan):
    system = build_system(system_name, CFG)
    if not fast_path:
        system.sampler.use_fast_path = False
    captured = _capture_samples(system)
    chaos = ChaosRuntime(plan)
    metrics = system.run_epoch(max_batches=BATCHES, functional=True,
                               chaos=chaos)
    return metrics, captured, system.last_pipeline_result


def _assert_samples_identical(a, b):
    assert len(a) == len(b)
    for (sa, ta), (sb, tb) in zip(a, b):
        for x, y in zip(sa, sb):
            assert np.array_equal(x.seeds, y.seeds)
            assert np.array_equal(x.all_nodes, y.all_nodes)
            for bx, by in zip(x.blocks, y.blocks):
                assert np.array_equal(bx.dst_nodes, by.dst_nodes)
                assert np.array_equal(bx.src_nodes, by.src_nodes)
                assert np.array_equal(bx.offsets, by.offsets)
        assert len(ta.ops) == len(tb.ops)
        for oa, ob in zip(ta.ops, tb.ops):
            assert type(oa) is type(ob)
            for attr in ("matrix", "work", "items"):
                if hasattr(oa, attr):
                    assert np.array_equal(getattr(oa, attr),
                                          getattr(ob, attr))


@pytest.mark.parametrize("fast_path", [True, False],
                         ids=["fast-path", "reference"])
@pytest.mark.parametrize("system_name", ["DSP", "DSP-Pull"])
def test_pure_slowdown_is_functionally_invisible(system_name, fast_path):
    base_metrics, base_samples, base_pipe = _run(system_name, fast_path,
                                                 FaultPlan())
    slow_metrics, slow_samples, slow_pipe = _run(system_name, fast_path,
                                                 PURE_SLOWDOWN)

    # what ran: bit-identical frontiers, blocks, op traces
    _assert_samples_identical(base_samples, slow_samples)

    # functional and analytic outputs: bit-identical
    for field in ("loss", "train_accuracy", "val_accuracy", "num_batches",
                  "sample_time", "load_time", "train_time",
                  "nvlink_bytes", "pcie_bytes", "network_bytes"):
        assert getattr(base_metrics, field) == getattr(slow_metrics, field), \
            field

    # when it ran: strictly slower, but nothing lost or degraded
    assert slow_metrics.epoch_time > base_metrics.epoch_time
    assert slow_pipe.lost_batches == 0
    assert slow_pipe.degraded_rounds == 0
    assert slow_pipe.invariants["clean"]
    assert base_pipe.invariants["clean"]


def test_fast_path_and_reference_agree_under_faults():
    """The two CSP implementations stay equivalent *under* injection."""
    _, fast_samples, _ = _run("DSP", True, PURE_SLOWDOWN)
    _, ref_samples, _ = _run("DSP", False, PURE_SLOWDOWN)
    _assert_samples_identical(fast_samples, ref_samples)
