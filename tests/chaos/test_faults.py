"""Tests for the fault model: events, windows, plans, serialization."""

import pytest

from repro.chaos.faults import (
    EVENT_KINDS,
    FaultPlan,
    CachePeerLoss,
    CollectiveDelay,
    CollectiveDrop,
    GpuStraggler,
    LinkDegrade,
    LinkFlap,
    QueueStall,
    WorkerCrash,
)
from repro.utils.errors import ConfigError


class TestFaultEvents:
    def test_half_open_window(self):
        ev = GpuStraggler(1.0, gpu=0, duration=2.0, slowdown=3.0)
        assert not ev.active(0.999)
        assert ev.active(1.0)  # start inclusive
        assert ev.active(2.999)
        assert not ev.active(3.0)  # end exclusive
        assert ev.end == pytest.approx(3.0)

    def test_permanent_event_never_ends(self):
        ev = CachePeerLoss(0.5, gpu=1)
        assert ev.end == float("inf")
        assert ev.active(0.5)
        assert ev.active(1e12)
        assert not ev.active(0.4)

    def test_worker_crash_is_permanent(self):
        assert WorkerCrash(2.0, gpu=0, stage="train").end == float("inf")

    def test_negative_start_rejected(self):
        with pytest.raises(ConfigError):
            GpuStraggler(-0.1)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ConfigError):
            GpuStraggler(0.0, duration=0.0)
        with pytest.raises(ConfigError):
            LinkDegrade(0.0, duration=-1.0)

    def test_slowdown_factor_bounds(self):
        with pytest.raises(ConfigError):
            GpuStraggler(0.0, slowdown=0.5)
        with pytest.raises(ConfigError):
            LinkDegrade(0.0, factor=0.9)
        with pytest.raises(ConfigError):
            CollectiveDelay(0.0, delay=-0.1)

    def test_unknown_link_rejected(self):
        with pytest.raises(ConfigError):
            LinkDegrade(0.0, link="infiniband-over-carrier-pigeon")
        with pytest.raises(ConfigError):
            LinkFlap(0.0, link="bogus")

    def test_unknown_stage_rejected(self):
        with pytest.raises(ConfigError):
            WorkerCrash(0.0, stage="profile")
        with pytest.raises(ConfigError):
            QueueStall(0.0, stage="nope")

    def test_registry_covers_every_kind(self):
        assert set(EVENT_KINDS) == {
            "gpu-straggler", "link-degrade", "link-flap", "cache-peer-loss",
            "worker-crash", "queue-stall", "collective-delay",
            "collective-drop",
        }
        for kind, cls in EVENT_KINDS.items():
            assert cls.KIND == kind


class TestFaultPlan:
    def test_events_normalized_to_canonical_order(self):
        a = GpuStraggler(0.5, gpu=0)
        b = LinkDegrade(0.1, link="pcie")
        c = WorkerCrash(0.1, gpu=1, stage="load")
        p1 = FaultPlan((a, b, c))
        p2 = FaultPlan((c, a, b))
        assert p1 == p2
        assert p1.events == p2.events
        assert [ev.start for ev in p1.events] == sorted(
            ev.start for ev in (a, b, c)
        )

    def test_non_event_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(("not-a-fault",))

    def test_fault_free_and_counts(self):
        assert FaultPlan().fault_free
        assert len(FaultPlan()) == 0
        plan = FaultPlan((GpuStraggler(0.0), GpuStraggler(1.0),
                          CollectiveDrop(0.0)))
        assert not plan.fault_free
        assert plan.kind_counts() == {"gpu-straggler": 2,
                                      "collective-drop": 1}
        assert len(plan.of_kind("gpu-straggler")) == 2
        assert plan.of_kind("link-flap") == ()

    def test_json_round_trip(self):
        plan = FaultPlan(
            (
                GpuStraggler(0.25, gpu=1, duration=0.5, slowdown=2.5),
                LinkFlap(0.1, link="nvlink", duration=0.05),
                CachePeerLoss(0.0, gpu=2),
                QueueStall(0.3, gpu=0, stage="load", duration=0.2),
                CollectiveDrop(0.4, gpu=3, duration=0.1),
            ),
            seed=17,
        )
        data = plan.to_dict()
        back = FaultPlan.from_dict(data)
        assert back == plan
        assert back.to_dict() == data
        # the dict is JSON-safe
        import json

        assert FaultPlan.from_dict(json.loads(json.dumps(data))) == plan

    def test_unknown_kind_in_dict_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_dict({"events": [{"kind": "solar-flare",
                                            "start": 0.0}]})


class TestRandomPlans:
    def test_pure_function_of_arguments(self):
        p1 = FaultPlan.random(seed=7, num_gpus=4, horizon=1.0)
        p2 = FaultPlan.random(seed=7, num_gpus=4, horizon=1.0)
        assert p1 == p2
        assert p1.seed == 7

    def test_different_seeds_differ(self):
        plans = {FaultPlan.random(seed=s, num_gpus=4, horizon=1.0).events
                 for s in range(20)}
        assert len(plans) > 1

    def test_events_bounded_by_horizon(self):
        for seed in range(30):
            plan = FaultPlan.random(seed=seed, num_gpus=2, horizon=2.0,
                                    max_events=6)
            assert len(plan) <= 6
            for ev in plan.events:
                assert 0.0 <= ev.start <= 2.0
                if ev.end != float("inf"):
                    assert ev.end <= 2 * 2.0 + 2.0  # start + duration bound

    def test_bad_arguments_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.random(seed=0, num_gpus=0, horizon=1.0)
        with pytest.raises(ConfigError):
            FaultPlan.random(seed=0, num_gpus=2, horizon=0.0)
