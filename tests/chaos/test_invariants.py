"""Tests for the invariant oracle: every checked property, both modes."""

import pytest

from repro.chaos.invariants import BYTES_RTOL, InvariantChecker
from repro.utils.errors import InvariantViolation


class TestClockMonotone:
    def test_forward_time_is_clean(self):
        inv = InvariantChecker()
        for t in (0.0, 0.5, 0.5, 1.0):
            inv.on_event_time(t)
        assert inv.clean

    def test_backwards_time_raises_in_strict_mode(self):
        inv = InvariantChecker()
        inv.on_event_time(1.0)
        with pytest.raises(InvariantViolation) as err:
            inv.on_event_time(0.5)
        assert err.value.invariant == "clock-monotone"

    def test_collect_mode_records_instead(self):
        inv = InvariantChecker(strict=False)
        inv.on_event_time(1.0)
        inv.on_event_time(0.5)
        assert not inv.clean
        assert "clock-monotone" in inv.violations[0]


class TestQueueBound:
    def test_at_capacity_is_legal(self):
        inv = InvariantChecker()
        inv.on_queue_push("q", depth=2, capacity=2)
        assert inv.clean

    def test_overflow_detected(self):
        inv = InvariantChecker(strict=False)
        inv.on_queue_push("samples-gpu0", depth=3, capacity=2)
        assert any("queue-bound" in v and "samples-gpu0" in v
                   for v in inv.violations)


class TestCccLaunchOrder:
    def test_contiguous_order_is_clean(self):
        inv = InvariantChecker()
        for g in (0, 1):
            for pos, tag in enumerate(("a", "b", "c")):
                inv.on_launch(g, tag, pos)
        assert inv.clean

    def test_divergent_position_detected(self):
        inv = InvariantChecker(strict=False)
        inv.on_launch(0, "a", 0)
        inv.on_launch(1, "a", 1)  # same tag, different global position
        assert any("ccc-launch-order" in v for v in inv.violations)

    def test_skipped_position_detected(self):
        inv = InvariantChecker(strict=False)
        inv.on_launch(0, "a", 0)
        inv.on_launch(0, "c", 2)  # gpu 0 never launched position 1
        assert any("expected 1" in v for v in inv.violations)


class TestByteConservation:
    def test_reconciles_within_tolerance(self):
        inv = InvariantChecker()
        inv.on_bytes("nvlink", 1000.0)
        inv.on_bytes("nvlink", 500.0)
        inv.finalize(expected_bytes={"nvlink": 1500.0 * (1 + BYTES_RTOL / 2)})
        assert inv.clean
        assert inv.finalized

    def test_mismatch_beyond_tolerance_detected(self):
        inv = InvariantChecker(strict=False)
        inv.on_bytes("pcie", 1000.0)
        inv.finalize(expected_bytes={"pcie": 2000.0})
        assert any("link-bytes" in v for v in inv.violations)

    def test_missing_link_counts_as_zero(self):
        inv = InvariantChecker(strict=False)
        inv.on_bytes("nvlink", 10.0)  # observed on a link never expected
        inv.finalize(expected_bytes={})
        assert not inv.clean


class TestNoLostBatches:
    def test_all_triples_accounted(self):
        inv = InvariantChecker()
        inv.on_stage_done(0, "sample", 0)
        inv.note_lost(0, "train", 0, reason="worker-crash")
        inv.finalize(expected_batches={(0, "sample", 0), (0, "train", 0)})
        assert inv.clean
        assert inv.summary()["lost_batches"] == 1

    def test_vanished_triple_detected(self):
        inv = InvariantChecker(strict=False)
        inv.on_stage_done(0, "sample", 0)
        inv.finalize(expected_batches={(0, "sample", 0), (1, "sample", 0)})
        assert any("no-lost-batches" in v and "unaccounted" in v
                   for v in inv.violations)

    def test_completed_and_lost_overlap_detected(self):
        inv = InvariantChecker(strict=False)
        inv.on_stage_done(0, "train", 3)
        inv.note_lost(0, "train", 3, reason="confused")
        inv.finalize(expected_batches={(0, "train", 3)})
        assert any("both completed and lost" in v for v in inv.violations)


class TestSummary:
    def test_summary_shape(self):
        inv = InvariantChecker(strict=False)
        inv.on_event_time(1.0)
        inv.on_event_time(0.0)
        s = inv.summary()
        assert s["checks"] >= 2
        assert s["clean"] is False
        assert len(s["violations"]) == 1
        assert s["finalized"] is False

    def test_checks_count_grows(self):
        inv = InvariantChecker()
        before = inv.checks
        inv.on_event_time(0.0)
        inv.on_queue_push("q", 0, 2)
        inv.on_launch(0, "t", 0)
        assert inv.checks == before + 3
