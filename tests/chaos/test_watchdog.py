"""Tests for the CollectiveGuard watchdog: abort, retry, abandon."""

import pytest

from repro.engine import (
    ROUND_ABANDONED,
    ROUND_OK,
    CollectiveGuard,
    Simulator,
    Timeout,
)
from repro.utils.errors import ReproError


def _joiner(guard, tag, n, outcomes, delay=0.0):
    def gen():
        if delay:
            yield Timeout(delay)
        outcome = yield from guard.join(tag, n)
        outcomes.append((guard.sim.now, outcome))

    return gen()


class TestHappyPath:
    def test_full_round_completes_ok(self):
        sim = Simulator()
        guard = CollectiveGuard(sim, timeout=1.0)
        outcomes = []
        for _ in range(3):
            sim.spawn(_joiner(guard, "t", 3, outcomes))
        sim.run()
        assert [o for _, o in outcomes] == [ROUND_OK] * 3
        assert (guard.rounds, guard.aborts, guard.abandoned_rounds) == (1, 0, 0)

    def test_round_faster_than_timeout_never_aborts(self):
        sim = Simulator()
        guard = CollectiveGuard(sim, timeout=10.0)
        outcomes = []
        sim.spawn(_joiner(guard, "t", 2, outcomes))
        sim.spawn(_joiner(guard, "t", 2, outcomes, delay=0.5))
        t = sim.run()
        assert all(o == ROUND_OK for _, o in outcomes)
        assert guard.aborts == 0
        # the stale timer fires harmlessly at t=10
        assert t == pytest.approx(10.0)


class TestAbortRetry:
    def test_late_participant_completes_on_retry(self):
        sim = Simulator()
        guard = CollectiveGuard(sim, timeout=1.0, backoff=0.25)
        outcomes = []
        sim.spawn(_joiner(guard, "t", 2, outcomes))  # on time
        sim.spawn(_joiner(guard, "t", 2, outcomes, delay=1.5))  # late
        sim.run()
        assert [o for _, o in outcomes] == [ROUND_OK] * 2
        assert guard.rounds == 1
        assert guard.aborts == 1  # attempt 0 timed out
        assert guard.retries == 1  # the on-time worker retried
        assert guard.abandoned_rounds == 0

    def test_never_arriving_participant_abandons(self):
        sim = Simulator()
        guard = CollectiveGuard(sim, timeout=1.0, max_retries=1,
                                backoff=0.25)
        outcomes = []
        # 2 of 3 expected participants show up; the third never does
        sim.spawn(_joiner(guard, "t", 3, outcomes))
        sim.spawn(_joiner(guard, "t", 3, outcomes))
        sim.run()  # must terminate: the watchdog breaks the hang
        assert [o for _, o in outcomes] == [ROUND_ABANDONED] * 2
        assert guard.rounds == 0
        assert guard.aborts == 2  # attempts 0 and 1 both timed out
        assert guard.retries == 2  # both survivors retried once
        assert guard.abandoned_rounds == 1

    def test_abandonment_is_permanent_for_late_arrivals(self):
        sim = Simulator()
        guard = CollectiveGuard(sim, timeout=0.5, max_retries=0)
        outcomes = []
        sim.spawn(_joiner(guard, "t", 2, outcomes))
        sim.run()
        assert outcomes == [(pytest.approx(0.5), ROUND_ABANDONED)]
        # a straggler arriving after abandonment is answered synchronously
        late = []
        sim.spawn(_joiner(guard, "t", 2, late))
        sim.run()
        assert [o for _, o in late] == [ROUND_ABANDONED]
        assert guard.abandoned_rounds == 1  # not double-counted

    def test_independent_tags_do_not_interfere(self):
        sim = Simulator()
        guard = CollectiveGuard(sim, timeout=0.5, max_retries=0)
        outcomes = []
        sim.spawn(_joiner(guard, "dead", 2, outcomes))  # peer never comes
        sim.spawn(_joiner(guard, "live", 2, outcomes))
        sim.spawn(_joiner(guard, "live", 2, outcomes))
        sim.run()
        by_tag = {}
        for _, o in outcomes:
            by_tag.setdefault(o, 0)
            by_tag[o] += 1
        assert by_tag == {ROUND_OK: 2, ROUND_ABANDONED: 1}


class TestValidation:
    def test_bad_timeout(self):
        with pytest.raises(ReproError):
            CollectiveGuard(Simulator(), timeout=0.0)

    def test_bad_max_retries(self):
        with pytest.raises(ReproError):
            CollectiveGuard(Simulator(), timeout=1.0, max_retries=-1)

    def test_bad_party_count(self):
        guard = CollectiveGuard(Simulator(), timeout=1.0)
        gen = guard.join("t", 0)
        with pytest.raises(ReproError):
            next(gen)

    def test_default_backoff_scales_with_timeout(self):
        guard = CollectiveGuard(Simulator(), timeout=2.0)
        assert guard.backoff == pytest.approx(0.5)
