"""Chaos regression suite: the systems x scenarios resilience matrix.

Every cell of the matrix must terminate (no raw deadlock), keep the
invariant oracle clean, and land on the expected degraded behaviour:
stragglers slow the epoch, sampler crashes lose batches but complete,
a crashed trainer stalls DSP's pipelined systems with a diagnosed
:class:`~repro.utils.errors.PipelineStall`, and cache-peer loss
degrades partitioned-cache serving while leaving DGL-UVA (no GPU
cache) untouched.  The determinism tests pin the acceptance contract:
the report is bit-identical across repeated runs and worker counts.
"""

import json

import pytest

from repro.chaos import SCENARIOS, format_report, resilience_report
from repro.chaos.scenarios import run_scenario
from repro.core import RunConfig
from repro.utils.errors import ConfigError

SYSTEMS = ("DSP", "DSP-Pull", "DGL-UVA")
CFG = RunConfig(dataset="tiny", num_gpus=2, hidden_dim=16, batch_size=8,
                fanout=(5, 3), seed=0)


@pytest.fixture(scope="module")
def matrix():
    """The full resilience matrix, computed once for the module."""
    return resilience_report(SYSTEMS, sorted(SCENARIOS), CFG,
                             max_batches=4, requests=64, qps=2000.0)


def _cell(matrix, system, scenario):
    return matrix["systems"][system][scenario]


class TestMatrixShape:
    def test_every_cell_present(self, matrix):
        assert set(matrix["systems"]) == set(SYSTEMS)
        for system in SYSTEMS:
            assert set(matrix["systems"][system]) == set(SCENARIOS)
        assert matrix["summary"]["runs"] == len(SYSTEMS) * len(SCENARIOS)

    def test_every_run_terminates_with_known_outcome(self, matrix):
        for system in SYSTEMS:
            for scenario in SCENARIOS:
                r = _cell(matrix, system, scenario)
                assert r["outcome"] in ("completed", "stalled")

    def test_invariants_clean_everywhere(self, matrix):
        assert matrix["summary"]["invariant_violations"] == 0
        assert matrix["summary"]["invariants_clean"]
        for system in SYSTEMS:
            for scenario in SCENARIOS:
                r = _cell(matrix, system, scenario)
                for key in ("invariants", "baseline_invariants"):
                    if r[key] is not None:
                        assert r[key]["clean"], (system, scenario, r[key])
                # a stalled run aborts before end-of-run reconciliation;
                # everything that completed must have been finalized
                if r["outcome"] == "completed":
                    assert r["invariants"]["finalized"]
                assert r["baseline_invariants"]["finalized"]

    def test_unknown_scenario_fails_fast(self):
        with pytest.raises(ConfigError):
            resilience_report(["DSP"], ["meteor-strike"], CFG)
        with pytest.raises(ConfigError):
            run_scenario("DSP", "meteor-strike", CFG)


class TestTimingFaultsDegradeButComplete:
    @pytest.mark.parametrize("scenario", ["straggler", "link-degrade",
                                          "link-flap", "collective-drop"])
    @pytest.mark.parametrize("system", SYSTEMS)
    def test_slower_but_lossless(self, matrix, system, scenario):
        r = _cell(matrix, system, scenario)
        assert r["outcome"] == "completed"
        assert r["slowdown"] > 1.1  # the fault visibly costs time
        assert r["lost_batches"] == 0
        assert r["degraded_rounds"] == 0

    def test_straggler_magnitude(self, matrix):
        # a 4x straggler over 60% of the epoch roughly doubles it
        assert _cell(matrix, "DSP", "straggler")["slowdown"] == pytest.approx(
            2.11, abs=0.3)

    def test_collective_drop_rounds_recover(self, matrix):
        # the watchdog re-forms every round once the drop window ends:
        # aborts may happen, but nothing is abandoned
        for system in SYSTEMS:
            r = _cell(matrix, system, "collective-drop")
            assert r["degraded_rounds"] == 0


class TestWorkerCrashes:
    def test_sampler_crash_completes_with_lost_batches(self, matrix):
        for system in ("DSP", "DSP-Pull"):
            r = _cell(matrix, system, "sampler-crash")
            assert r["outcome"] == "completed"
            assert r["lost_batches"] == 6
            assert r["degraded_rounds"] == 12
            assert r["aborted_rounds"] == 48

    def test_sampler_crash_on_sequential_baseline(self, matrix):
        # DGL-UVA runs the sequential pipeline: downstream stages of the
        # crashed sampler are skipped cleanly, no collectives degrade
        r = _cell(matrix, "DGL-UVA", "sampler-crash")
        assert r["outcome"] == "completed"
        assert r["lost_batches"] == 2
        assert r["degraded_rounds"] == 0

    def test_trainer_crash_stalls_pipelined_systems(self, matrix):
        for system in ("DSP", "DSP-Pull"):
            r = _cell(matrix, system, "trainer-crash")
            assert r["outcome"] == "stalled"
            assert r["dead_workers"] == ["trainer-gpu0"]
            assert r["epoch_time"] is None

    def test_trainer_crash_completes_sequentially(self, matrix):
        # the sequential baseline skips the dead trainer's stages
        # instead of wedging on a full queue
        r = _cell(matrix, "DGL-UVA", "trainer-crash")
        assert r["outcome"] == "completed"
        assert r["lost_batches"] == 3
        assert r["degraded_rounds"] == 3


class TestCachePeerLoss:
    def test_partitioned_caches_degrade_gracefully(self, matrix):
        for system in ("DSP", "DSP-Pull"):
            r = _cell(matrix, system, "cache-peer-loss")
            assert r["outcome"] == "completed"
            assert r["mode"] == "serve"
            assert r["degraded"] == 64  # every request lost its shard
            assert r["completed"] == 64  # ...but all were still served
            assert r["shed"] == 0

    def test_uncached_baseline_is_immune(self, matrix):
        r = _cell(matrix, "DGL-UVA", "cache-peer-loss")
        assert r["outcome"] == "completed"
        assert r["degraded"] == 0
        assert r["slowdown"] == pytest.approx(1.0)


class TestDeterminism:
    """Same seed + plan => byte-identical report, however executed."""

    SUBSET = ("straggler", "sampler-crash", "cache-peer-loss")

    def test_repeated_runs_identical(self):
        kw = dict(max_batches=3, requests=32, qps=2000.0)
        a = resilience_report(["DSP"], self.SUBSET, CFG, **kw)
        b = resilience_report(["DSP"], self.SUBSET, CFG, **kw)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_worker_count_invisible(self):
        kw = dict(max_batches=3, requests=32, qps=2000.0)
        serial = resilience_report(["DSP", "DGL-UVA"], self.SUBSET, CFG, **kw)
        fanned = resilience_report(["DSP", "DGL-UVA"], self.SUBSET, CFG,
                                   workers=2, **kw)
        assert (json.dumps(serial, sort_keys=True)
                == json.dumps(fanned, sort_keys=True))


class TestFormatReport:
    def test_renders_every_cell_and_summary(self, matrix):
        text = format_report(matrix)
        for system in SYSTEMS:
            assert system in text
        for scenario in SCENARIOS:
            assert scenario in text
        assert "dead: trainer-gpu0" in text
        assert f"{matrix['summary']['runs']} runs" in text
        assert "invariants clean" in text

    def test_json_safe(self, matrix):
        json.dumps(matrix)  # must not raise
