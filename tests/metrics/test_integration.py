"""End-to-end metrics contracts on the tiny dataset.

The three acceptance properties of the metrics layer:

1. metrics output is byte-identical across ``--workers`` settings;
2. with metrics detached, serve reports and epoch results are
   bit-identical to the uninstrumented seed behaviour;
3. the chaos matrix carries the windowed SLO summary and the
   per-scenario "SLO minutes violated" figure.
"""

import json

import numpy as np
import pytest

from repro.core import RunConfig, build_system
from repro.serve import (
    ServeConfig,
    WorkloadConfig,
    make_workload,
    qps_sweep,
    serve_once,
)

CFG = RunConfig(dataset="tiny", num_gpus=2, hidden_dim=16, batch_size=8,
                fanout=(5, 3), seed=3)


@pytest.fixture(scope="module")
def dsp():
    return build_system("DSP", CFG)


@pytest.fixture(scope="module")
def workload(dsp):
    return make_workload(
        WorkloadConfig(num_requests=48, seed=7),
        np.arange(dsp.base_dataset.num_nodes),
    )


class TestWorkerDeterminism:
    def test_metrics_byte_identical_across_workers(self, dsp, workload):
        """The full windowed metrics summary of every sweep point is a
        pure function of the point — not of which process ran it."""
        blobs = {}
        for workers in (1, 2, 4):
            points = qps_sweep(dsp, workload, [1000.0, 4000.0],
                               ServeConfig(), workers=workers, metrics=True)
            blobs[workers] = json.dumps(
                [p.report.to_dict() for p in points], sort_keys=True
            )
        assert blobs[1] == blobs[2] == blobs[4]


class TestMetricsOffBitIdentity:
    def test_serve_report_identical_with_metrics_detached(self, dsp,
                                                          workload):
        """metrics=False reports carry no 'metrics' key and match a
        metrics=True run on every other field."""
        off = serve_once(dsp, workload, 2000.0, ServeConfig())
        on = serve_once(dsp, workload, 2000.0, ServeConfig(), metrics=True)
        d_off, d_on = off.to_dict(), on.to_dict()
        assert "metrics" not in d_off
        d_on.pop("metrics")
        assert d_off == d_on

    def test_epoch_identical_with_metrics_attached(self):
        """A fault-free epoch is bit-identical whether or not a
        registry observes it (the zero-cost-off contract)."""
        from repro.metrics import MetricsRegistry

        plain = build_system("DSP", CFG).run_epoch(
            max_batches=2, functional=False
        )
        reg = MetricsRegistry(window_s=0.001)
        observed = build_system("DSP", CFG).run_epoch(
            max_batches=2, functional=False, metrics=reg
        )
        assert plain.epoch_time == observed.epoch_time
        assert plain.nvlink_bytes == observed.nvlink_bytes
        assert plain.pcie_bytes == observed.pcie_bytes
        # and the registry actually saw the run
        assert len(reg) > 0
        assert reg.find("counter", "link_bytes", link="nvlink") is not None


class TestServeInstrumentation:
    def test_summary_matches_exact_report_counts(self, dsp, workload):
        """Counters agree exactly with the report's own accounting;
        windowed p99 brackets the exact p99 within the bucket bound."""
        rep = serve_once(dsp, workload, 4000.0, ServeConfig(), metrics=True)
        m = rep.metrics
        assert m is not None
        slo = m["slo"]
        assert slo["completed"] == rep.completed
        exact_viol = round((1.0 - rep.slo_attainment) * rep.offered)
        assert slo["violations"] + rep.shed == exact_viol
        assert slo["windows"], "expected at least one window"
        total = sum(w["completed"] for w in slo["windows"])
        assert total == rep.completed
        assert set(m.get("stages", {})) >= {"queue", "batch", "sample",
                                            "load", "compute"}

    def test_window_width_override(self, dsp, workload):
        rep = serve_once(dsp, workload, 2000.0, ServeConfig(),
                         metrics=True, metrics_window_s=0.002)
        assert rep.metrics["window_ms"] == pytest.approx(2.0)


class TestChaosSLOColumn:
    @pytest.fixture(scope="class")
    def cell(self):
        from repro.chaos.scenarios import run_scenario

        return run_scenario("DSP", "cache-peer-loss", CFG,
                            requests=24, qps=3000.0)

    def test_serve_cell_carries_slo_summary(self, cell):
        assert "slo_minutes_violated" in cell
        assert "baseline_slo_minutes_violated" in cell
        assert cell["slo"] is not None and "windows" in cell["slo"]
        assert cell["fault_events"] >= 1  # the injected peer loss

    def test_train_cell_counts_fault_events(self):
        from repro.chaos.scenarios import run_scenario

        cell = run_scenario("DSP", "straggler", CFG, max_batches=2)
        assert cell["fault_events"] == 2  # inject + clear

    def test_format_report_has_slo_column(self, cell):
        from repro.chaos.scenarios import format_report

        payload = {
            "scenarios": ["cache-peer-loss"],
            "systems": {"DSP": {"cache-peer-loss": cell}},
            "summary": {"runs": 1, "completed": 1, "stalled": 0,
                        "invariant_violations": 0,
                        "invariants_clean": True},
        }
        text = format_report(payload)
        assert "SLO min" in text

    def test_cell_deterministic(self, cell):
        from repro.chaos.scenarios import run_scenario

        again = run_scenario("DSP", "cache-peer-loss", CFG,
                             requests=24, qps=3000.0)
        assert json.dumps(cell, sort_keys=True) == json.dumps(
            again, sort_keys=True)
