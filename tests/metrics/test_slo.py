"""SLOMonitor and serve_summary on synthetic registries."""

import pytest

from repro.metrics import MetricsRegistry, SLOMonitor, serve_summary


def _run(latencies_by_t, slo_s, window_s=1.0):
    """Feed (t, latency) completions through the serving convention:
    exact violations counted at completion time."""
    reg = MetricsRegistry(window_s=window_s)
    lat = reg.histogram("request_latency")
    done = reg.counter("requests_completed")
    viol = reg.counter("slo_violations")
    t_end = 0.0
    for t, v in latencies_by_t:
        lat.observe(t, v)
        done.inc(t)
        if v > slo_s:
            viol.inc(t)
        t_end = max(t_end, t)
    reg.finalize(t_end)
    return reg


class TestSLOMonitor:
    def test_clean_run_violates_nothing(self):
        reg = _run([(0.1 * i, 0.001) for i in range(30)], slo_s=0.005)
        s = SLOMonitor(reg, 0.005).summary()
        assert s["violations"] == 0
        assert s["attainment"] == 1.0
        assert s["slo_minutes_violated"] == 0.0
        assert all(not w["violated"] for w in s["windows"])

    def test_bad_window_counts_its_width_in_minutes(self):
        # window [1, 2): 10 completions, 5 violations -> burn 50x budget
        events = [(0.1 * i, 0.001) for i in range(10)]
        events += [(1.0 + 0.05 * i, 0.010 if i < 5 else 0.001)
                   for i in range(10)]
        reg = _run(events, slo_s=0.005)
        s = SLOMonitor(reg, 0.005).summary()
        assert s["violations"] == 5
        assert s["slo_minutes_violated"] == pytest.approx(1.0 / 60.0)
        flags = {w["t_ms"]: w["violated"] for w in s["windows"]}
        assert flags[0.0] is False and flags[1000.0] is True
        bad = [w for w in s["windows"] if w["violated"]][0]
        assert bad["burn_rate"] == pytest.approx(0.5 / 0.01)

    def test_burn_at_exactly_budget_is_not_violated(self):
        # 100 completions, 1 violation, target 0.99 -> burn exactly 1.0
        events = [(0.005 * i, 0.001) for i in range(99)] + [(0.4999, 0.010)]
        reg = _run(events, slo_s=0.005)
        s = SLOMonitor(reg, 0.005).summary()
        assert s["burn_rate"] == pytest.approx(1.0)
        assert s["slo_minutes_violated"] == 0.0

    def test_empty_registry(self):
        reg = MetricsRegistry(window_s=1.0)
        s = SLOMonitor(reg, 0.005).summary()
        assert s["windows"] == []
        assert s["completed"] == 0
        assert s["attainment"] == 1.0

    def test_rejects_bad_params(self):
        reg = MetricsRegistry(window_s=1.0)
        with pytest.raises(ValueError):
            SLOMonitor(reg, 0.0)
        with pytest.raises(ValueError):
            SLOMonitor(reg, 0.005, target=1.0)


class TestServeSummary:
    def test_shed_aggregates_across_gpu_labels(self):
        reg = MetricsRegistry(window_s=1.0)
        reg.counter("requests_shed", gpu=0).inc(0.5, 1)
        reg.counter("requests_shed", gpu=1).inc(0.5, 2)
        reg.finalize(1.0)
        out = serve_summary(reg, slo_s=0.005)
        assert out["shed"]["total"] == 3.0
        assert out["shed"]["windows"] == [{"t": 0.0, "value": 3.0}]

    def test_optional_sections_absent_when_uninstrumented(self):
        reg = MetricsRegistry(window_s=1.0)
        reg.finalize(0.0)
        out = serve_summary(reg, slo_s=0.005)
        for key in ("stages", "admission_depth", "shed", "degraded",
                    "link_bytes", "cache", "events"):
            assert key not in out
        assert out["slo"]["completed"] == 0

    def test_events_exported_sorted(self):
        reg = MetricsRegistry(window_s=1.0)
        reg.event(0.5, "inject:gpu-straggler", gpu=0)
        reg.event(0.1, "violation:queue-bound")
        out = serve_summary(reg, slo_s=0.005)
        assert [e["name"] for e in out["events"]] == [
            "violation:queue-bound", "inject:gpu-straggler",
        ]

    def test_plan_cache_hit_rate(self):
        reg = MetricsRegistry(window_s=1.0)
        reg.gauge("plan_cache_hits").set(0.5, 6.0)
        reg.gauge("plan_cache_misses").set(0.5, 2.0)
        reg.finalize(1.0)
        out = serve_summary(reg, slo_s=0.005)
        assert out["cache"]["plan"]["hit_rate"] == pytest.approx(0.75)
