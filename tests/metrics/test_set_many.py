"""``Gauge.set_many`` — the vectorized bulk update used by buffered
engine producers — must integrate exactly like a sequence of ``set``
calls, and the resource-usage buffer must export the same series as
the old per-event path."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import Resource, Simulator, Timeout
from repro.metrics import MetricsRegistry


def _series(reg: MetricsRegistry, name: str, **labels):
    g = reg.find("gauge", name, **labels)
    assert g is not None, name
    return g.series()


def _assert_series_equal(got, want):
    assert len(got) == len(want)
    for a, b in zip(got, want):
        assert a["t"] == b["t"]
        assert a["mean"] == pytest.approx(b["mean"], rel=1e-9, abs=1e-12)
        assert a["max"] == pytest.approx(b["max"], rel=1e-9, abs=1e-12)


def _compare_bulk_vs_sequential(samples, window_s=1.0, end=None):
    """Same samples through set_many (one call) and set (per sample)."""
    seq = MetricsRegistry(window_s=window_s)
    g_seq = seq.gauge("x")
    for t, v in samples:
        g_seq.set(t, v)

    bulk = MetricsRegistry(window_s=window_s)
    bulk.gauge("x").set_many([t for t, _ in samples],
                             [v for _, v in samples])

    t_end = samples[-1][0] if end is None else end
    seq.finalize(t_end)
    bulk.finalize(t_end)
    _assert_series_equal(_series(bulk, "x"), _series(seq, "x"))


class TestSetManyEquivalence:
    def test_within_one_window(self):
        _compare_bulk_vs_sequential([(0.1, 1.0), (0.3, 3.0), (0.7, 0.0)])

    def test_crossing_window_boundaries(self):
        _compare_bulk_vs_sequential(
            [(0.5, 2.0), (1.5, 4.0), (3.25, 0.0), (3.75, 1.0)], end=5.0
        )

    def test_long_gaps_span_many_windows(self):
        _compare_bulk_vs_sequential(
            [(0.0, 3.0), (10.0, 0.0), (25.0, 7.0)], end=30.0
        )

    def test_duplicate_timestamps_keep_last(self):
        _compare_bulk_vs_sequential(
            [(0.2, 1.0), (0.2, 5.0), (0.2, 2.0), (0.9, 0.0)]
        )

    def test_large_batch_vector_path(self):
        # >=32 samples takes the numpy path; mirror-check against set()
        rng = random.Random(7)
        t = 0.0
        samples = []
        for _ in range(500):
            t += rng.choice((0.0, 0.05, 0.1, 0.4))
            samples.append((t, rng.choice((0.0, 0.25, 0.5, 1.0))))
        _compare_bulk_vs_sequential(samples, end=t + 1.0)

    def test_incremental_batches_resume_held_value(self):
        # two set_many calls: the second must continue integrating the
        # first call's final held value across the gap
        seq = MetricsRegistry(window_s=1.0)
        g = seq.gauge("x")
        for t, v in [(0.5, 2.0), (4.5, 1.0), (6.0, 0.0)]:
            g.set(t, v)
        seq.finalize(8.0)

        bulk = MetricsRegistry(window_s=1.0)
        gb = bulk.gauge("x")
        gb.set_many([0.5], [2.0])
        gb.set_many([4.5, 6.0], [1.0, 0.0])
        bulk.finalize(8.0)
        _assert_series_equal(_series(bulk, "x"), _series(seq, "x"))

    def test_empty_and_mismatched_inputs(self):
        g = MetricsRegistry(window_s=1.0).gauge("x")
        g.set_many([], [])  # no-op
        with pytest.raises(ValueError):
            g.set_many([0.0, 1.0], [1.0])

    @given(st.lists(
        st.tuples(st.sampled_from([0.0, 0.1, 0.25, 0.5, 1.0, 2.5]),
                  st.sampled_from([0.0, 0.5, 1.0, 3.0])),
        min_size=1, max_size=80,
    ))
    @settings(max_examples=40, deadline=None)
    def test_property_equivalence(self, deltas):
        t = 0.0
        samples = []
        for dt, v in deltas:
            t += dt
            samples.append((t, v))
        _compare_bulk_vs_sequential(samples, end=t + 1.0)


class TestBufferedResourceMetrics:
    def _usage_series(self, flush_every):
        """A contended-resource run with the buffer flush threshold
        patched; returns the exported utilization series."""
        import repro.engine.resources as resources_mod

        orig = resources_mod.METRIC_FLUSH_EVERY
        resources_mod.METRIC_FLUSH_EVERY = flush_every
        try:
            reg = MetricsRegistry(window_s=0.5)
            sim = Simulator(metrics=reg)
            r = Resource(sim, capacity=2, name="sm")

            def job(d):
                yield r.acquire(1)
                yield Timeout(d)
                r.release(1)

            for i in range(20):
                sim.spawn(job(0.3 + (i % 3) * 0.2))
            sim.run()
            reg.finalize(sim.now)
            return (_series(reg, "resource_util", resource="sm"),
                    _series(reg, "resource_busy", resource="sm"))
        finally:
            resources_mod.METRIC_FLUSH_EVERY = orig

    def test_bulk_flush_matches_per_event_flush(self):
        """flush-every-1 is the old per-event behaviour; the default
        bulk threshold must export the same series."""
        util_bulk, busy_bulk = self._usage_series(256)
        util_seq, busy_seq = self._usage_series(1)
        _assert_series_equal(util_bulk, util_seq)
        _assert_series_equal(busy_bulk, busy_seq)

    def test_finalize_drains_partial_buffer(self):
        """Samples below the flush threshold still reach the export —
        the registry flusher hook runs before finalize reads."""
        reg = MetricsRegistry(window_s=1.0)
        sim = Simulator(metrics=reg)
        r = Resource(sim, capacity=1, name="sm")

        def job():
            yield r.acquire(1)
            yield Timeout(1.0)
            r.release(1)

        sim.spawn(job())
        sim.run()
        reg.finalize(sim.now)
        rows = _series(reg, "resource_util", resource="sm")
        assert rows and rows[0]["max"] == pytest.approx(1.0)

    def test_to_dict_also_flushes(self):
        reg = MetricsRegistry(window_s=1.0)
        sim = Simulator(metrics=reg)
        r = Resource(sim, capacity=1, name="sm")

        def job():
            yield r.acquire(1)
            yield Timeout(0.25)
            r.release(1)

        sim.spawn(job())
        sim.run()
        names = {i["name"] for i in reg.to_dict()["instruments"]}
        assert "resource_util" in names and "resource_busy" in names
