"""The HTML run report: determinism, escaping, input shapes."""

from repro.metrics import build_report


def _serve_payload() -> dict:
    return {
        "system": "DSP",
        "offered_qps": 8000.0,
        "slo_ms": 5.0,
        "completed": 40,
        "shed": 2,
        "goodput_qps": 7000.0,
        "slo_attainment": 0.95,
        "latency_ms": {"p50": 0.8, "p95": 2.0, "p99": 4.0},
        "metrics": {
            "window_ms": 5.0,
            "slo": {
                "slo_ms": 5.0, "target": 0.99, "window_ms": 5.0,
                "completed": 40, "violations": 1, "attainment": 0.975,
                "burn_rate": 2.5, "slo_minutes_violated": 0.0005,
                "windows": [
                    {"t_ms": 0.0, "completed": 20, "violations": 0,
                     "p50_ms": 0.7, "p95_ms": 1.5, "p99_ms": 2.2,
                     "burn_rate": 0.0, "violated": False},
                    {"t_ms": 5.0, "completed": 20, "violations": 1,
                     "p50_ms": 0.9, "p95_ms": 2.5, "p99_ms": 5.5,
                     "burn_rate": 5.0, "violated": True},
                ],
            },
            "stages": {
                "queue": [{"t_ms": 0.0, "count": 20, "p50_ms": 0.1,
                           "p95_ms": 0.2, "p99_ms": 0.3}],
            },
            "shed": {"total": 2.0,
                     "windows": [{"t": 0.005, "value": 2.0}]},
            "events": [{"t_ms": 5.0, "name": "inject:gpu-straggler"}],
        },
    }


def _chaos_payload() -> dict:
    return {
        "scenarios": ["straggler", "cache-peer-loss"],
        "systems": {
            "DSP": {
                "straggler": {
                    "mode": "train", "outcome": "completed",
                    "slowdown": 2.6, "fault_events": 2,
                    "invariants": {"clean": True, "violations": []},
                },
                "cache-peer-loss": {
                    "mode": "serve", "outcome": "completed",
                    "p99_ms": 1.2, "degraded": 24,
                    "slo_minutes_violated": 0.0,
                    "invariants": {"clean": True, "violations": []},
                },
            },
        },
        "summary": {"runs": 2, "completed": 2, "stalled": 0,
                    "invariant_violations": 0, "invariants_clean": True},
    }


class TestDeterminism:
    def test_byte_identical_builds(self):
        kwargs = dict(serve=_serve_payload(), chaos=_chaos_payload(),
                      trace_sections=[("Stall breakdown", "gpu 0 ...")])
        assert build_report(**kwargs) == build_report(**kwargs)


class TestServeSection:
    def test_tiles_and_figures_present(self):
        html = build_report(serve=_serve_payload())
        assert "SLO minutes violated" in html
        assert "Windowed request latency" in html
        assert "SLO burn rate" in html
        assert "Stage latency (p95)" in html
        assert "inject:gpu-straggler" in html
        # every rendered figure ships its table-view twin
        assert html.count("<figure") == html.count(
            "<details><summary>Data table")

    def test_serve_list_renders_one_section_each(self):
        a, b = _serve_payload(), _serve_payload()
        b["system"] = "DGL-UVA"
        html = build_report(serve=[a, b])
        assert "Serving — DSP" in html and "Serving — DGL-UVA" in html

    def test_no_metrics_hint(self):
        payload = _serve_payload()
        del payload["metrics"]
        html = build_report(serve=payload)
        assert "--metrics" in html


class TestChaosSection:
    def test_resilience_payload_flattened(self):
        html = build_report(chaos=_chaos_payload())
        assert "Chaos scenario matrix" in html
        assert "DSP/straggler" in html
        assert "SLO min" in html
        assert "SLO minutes violated per scenario" in html

    def test_flat_cell_list_accepted(self):
        cells = [{"scenario": "s1", "mode": "serve", "status": "completed",
                  "slo_minutes_violated": 0.25}]
        html = build_report(chaos={"scenarios": cells})
        assert "s1" in html


class TestSafety:
    def test_input_text_is_escaped(self):
        payload = _serve_payload()
        payload["system"] = '<script>alert(1)</script>'
        html = build_report(
            serve=payload,
            trace_sections=[("<b>x</b>", "a & b < c")],
        )
        assert "<script>alert" not in html
        assert "&lt;script&gt;" in html
        assert "&lt;b&gt;" in html

    def test_empty_report(self):
        html = build_report()
        assert "Nothing to report" in html
        assert html.startswith("<!DOCTYPE html>")
