"""CLI surface: ``repro serve --metrics`` and ``repro report``."""

import json

from repro.cli import main

ARGS = ["--dataset", "tiny", "--gpus", "2", "--hidden", "16",
        "--batch-size", "8", "--fanout", "5,3"]
SERVE = ["serve", *ARGS, "--qps", "2000", "--requests", "24"]


class TestServeMetricsFlag:
    def test_metrics_column_and_json(self, capsys, tmp_path):
        out_path = tmp_path / "serve.json"
        assert main([*SERVE, "--metrics", "--out", str(out_path)]) == 0
        printed = capsys.readouterr().out
        assert "SLO min" in printed
        payload = json.loads(out_path.read_text())
        point = payload["systems"]["DSP"]["points"][0]
        assert "metrics" in point
        assert "slo_minutes_violated" in point["metrics"]["slo"]

    def test_without_flag_json_is_metrics_free(self, capsys, tmp_path):
        out_path = tmp_path / "serve.json"
        assert main([*SERVE, "--out", str(out_path)]) == 0
        assert "SLO min" not in capsys.readouterr().out
        point = json.loads(out_path.read_text())["systems"]["DSP"]["points"][0]
        assert "metrics" not in point


class TestReportCommand:
    def test_full_report_from_artifacts(self, capsys, tmp_path):
        serve_json = tmp_path / "serve.json"
        trace_json = tmp_path / "trace.json"
        chaos_json = tmp_path / "chaos.json"
        out_html = tmp_path / "report.html"
        assert main([*SERVE, "--metrics", "--out", str(serve_json)]) == 0
        assert main(["trace", *ARGS, "--batches", "1",
                     "--out", str(trace_json)]) == 0
        assert main(["chaos", *ARGS, "--systems", "DSP",
                     "--scenarios", "cache-peer-loss", "--requests", "16",
                     "--out", str(chaos_json)]) == 0
        capsys.readouterr()
        assert main(["report", "--serve", str(serve_json),
                     "--chaos", str(chaos_json),
                     "--trace", str(trace_json),
                     "--out", str(out_html)]) == 0
        assert "wrote" in capsys.readouterr().out
        html = out_html.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "SLO minutes violated" in html
        assert "Chaos scenario matrix" in html
        assert "Stall breakdown" in html and "Critical path" in html

    def test_report_deterministic(self, capsys, tmp_path):
        serve_json = tmp_path / "serve.json"
        assert main([*SERVE, "--metrics", "--out", str(serve_json)]) == 0
        a, b = tmp_path / "a.html", tmp_path / "b.html"
        assert main(["report", "--serve", str(serve_json),
                     "--out", str(a)]) == 0
        assert main(["report", "--serve", str(serve_json),
                     "--out", str(b)]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_missing_input_is_one_line_error(self, capsys, tmp_path):
        assert main(["report", "--serve", str(tmp_path / "nope.json"),
                     "--out", str(tmp_path / "r.html")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_corrupt_trace_is_one_line_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["report", "--trace", str(bad),
                     "--out", str(tmp_path / "r.html")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "not valid JSON" in err

    def test_non_trace_json_is_one_line_error(self, capsys, tmp_path):
        nt = tmp_path / "nt.json"
        nt.write_text('{"foo": 1}')
        assert main(["report", "--trace", str(nt),
                     "--out", str(tmp_path / "r.html")]) == 1
        assert "not a Chrome trace" in capsys.readouterr().err
