"""Cache counters on the serving metrics path.

Satellite contracts: ``cache_hit`` / ``cache_promote`` /
``cache_demote`` counters ride the windowed serve summary, agree with
the loader's own path accounting, are byte-identical across
``--workers`` settings, and cost nothing when metrics are off (the
report is bit-identical to an uninstrumented run).
"""

import json

import numpy as np
import pytest

from repro.core import RunConfig, build_system
from repro.serve import (
    ServeConfig,
    WorkloadConfig,
    make_workload,
    qps_sweep,
    serve_once,
)

CACHE_BYTES = 50 * 16 * 4.0  # 50 rows/GPU on tiny (dim 16, fp32)
BASE = dict(dataset="tiny", num_gpus=2, hidden_dim=16, batch_size=8,
            fanout=(12,), feature_cache_bytes=CACHE_BYTES, seed=3)
DYNAMIC = dict(dynamic_cache=True, cache_window=2, cache_ewma=0.3,
               cache_prefetch=16)


def _workload(system, requests=160):
    return make_workload(
        WorkloadConfig(num_requests=requests, skew=1.5, drift_phases=2,
                       seed=7),
        np.arange(system.base_dataset.num_nodes),
    )


@pytest.fixture(scope="module")
def dynamic_summary():
    system = build_system("DSP", RunConfig(**BASE, **DYNAMIC))
    wl = _workload(system)
    report = serve_once(system, wl, 2e6, ServeConfig(functional=False),
                        metrics=True)
    return report.metrics, dict(system.loader.totals)


class TestCounters:
    def test_dynamic_run_exports_all_three(self, dynamic_summary):
        cache = dynamic_summary[0]["cache"]
        assert cache["hits"]["total"] > 0
        assert cache["promotions"]["total"] > 0
        assert cache["demotions"]["total"] > 0
        # partitioned residency: every promotion evicts exactly one row
        assert cache["promotions"]["total"] == cache["demotions"]["total"]

    def test_hits_agree_with_loader_paths(self, dynamic_summary):
        summary, totals = dynamic_summary
        cache = summary["cache"]
        feature = cache["feature"]
        assert cache["hits"]["total"] == (
            feature["local"]["total"] + feature["remote"]["total"]
        )
        assert feature["local"]["total"] + feature["remote"]["total"] == (
            totals["local"] + totals["remote"]
        )

    def test_static_run_has_no_promotion_counters(self):
        system = build_system("DSP", RunConfig(**BASE))
        wl = _workload(system)
        report = serve_once(system, wl, 2e6, ServeConfig(functional=False),
                            metrics=True)
        cache = report.metrics["cache"]
        assert cache["hits"]["total"] > 0
        assert "promotions" not in cache
        assert "demotions" not in cache


class TestWorkerDeterminism:
    def test_counters_byte_identical_across_workers(self):
        wl = _workload(build_system("DSP", RunConfig(**BASE, **DYNAMIC)))
        blobs = {}
        for workers in (1, 2):
            system = build_system("DSP", RunConfig(**BASE, **DYNAMIC))
            points = qps_sweep(system, wl, [1000.0, 4000.0],
                               ServeConfig(functional=False),
                               workers=workers, metrics=True)
            blobs[workers] = json.dumps(
                [p.report.metrics["cache"] for p in points], sort_keys=True
            )
        assert blobs[1] == blobs[2]


class TestZeroCostOff:
    def test_report_identical_with_metrics_off(self):
        """The counters exist only inside the registry: with metrics
        off the report matches field for field, and the loader's own
        totals are untouched by instrumentation."""
        totals = {}
        reports = {}
        for metrics in (False, True):
            system = build_system("DSP", RunConfig(**BASE, **DYNAMIC))
            wl = _workload(system)
            reports[metrics] = serve_once(
                system, wl, 2e6, ServeConfig(functional=False),
                metrics=metrics,
            )
            totals[metrics] = dict(system.loader.totals)
        d_off, d_on = reports[False].to_dict(), reports[True].to_dict()
        assert "metrics" not in d_off
        d_on.pop("metrics")
        assert d_off == d_on
        assert totals[False] == totals[True]
