"""Regression pins for the single shared quantile helper.

``repro.serve.stats`` and the streaming histograms both lean on this
module, so its edge-case behaviour (empty input, one sample, ties) is
pinned here once instead of re-tested per consumer.
"""

import math

import numpy as np
import pytest

from repro.metrics.quantile import nearest_rank, percentile, percentiles


class TestPercentile:
    def test_empty_input_is_nan(self):
        assert math.isnan(percentile([], 50))
        assert math.isnan(percentile(np.empty(0), 99))
        p50, p95, p99 = percentiles([])
        assert math.isnan(p50) and math.isnan(p95) and math.isnan(p99)

    def test_single_sample_every_q(self):
        for q in (0, 1, 50, 95, 99, 100):
            assert percentile([7.25], q) == 7.25

    def test_all_ties(self):
        vals = [3.0] * 17
        assert percentiles(vals) == (3.0, 3.0, 3.0)

    def test_matches_numpy_percentile(self):
        rng = np.random.default_rng(11)
        for n in (1, 2, 3, 10, 101, 1000):
            vals = rng.exponential(scale=2.0, size=n)
            for q in (0, 10, 50, 90, 95, 99, 99.9, 100):
                assert percentile(vals, q) == pytest.approx(
                    float(np.percentile(vals, q)), rel=0, abs=0
                )

    def test_ordering(self):
        vals = list(range(100))
        p50, p95, p99 = percentiles(vals)
        assert p50 <= p95 <= p99

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], -1)
        with pytest.raises(ValueError):
            percentile([1.0], 100.5)


class TestNearestRank:
    def test_pins(self):
        # 1-indexed nearest-rank: ceil(q/100 * n), clamped to [1, n]
        assert nearest_rank(1, 50) == 1
        assert nearest_rank(1, 99) == 1
        assert nearest_rank(100, 50) == 50
        assert nearest_rank(100, 99) == 99
        assert nearest_rank(10, 95) == 10
        assert nearest_rank(10, 0) == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            nearest_rank(0, 50)
