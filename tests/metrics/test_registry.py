"""MetricsRegistry: windowing, gauge integrals, determinism."""

import json

import pytest

from repro.metrics import MetricsRegistry


class TestCounter:
    def test_total_and_window_buckets(self):
        reg = MetricsRegistry(window_s=1.0)
        c = reg.counter("bytes", link="nvlink")
        c.inc(0.1, 10)
        c.inc(0.9, 5)
        c.inc(1.5, 2)
        assert c.total == 17.0
        assert c.series() == [
            {"t": 0.0, "value": 15.0},
            {"t": 1.0, "value": 2.0},
        ]

    def test_label_sets_are_distinct_instruments(self):
        reg = MetricsRegistry(window_s=1.0)
        reg.counter("shed", gpu=0).inc(0.0)
        reg.counter("shed", gpu=1).inc(0.0, 2)
        assert reg.counter("shed", gpu=0).total == 1.0
        assert reg.counter("shed", gpu=1).total == 2.0
        assert reg.find("counter", "shed", gpu=2) is None


class TestGauge:
    def test_time_weighted_mean_within_one_window(self):
        reg = MetricsRegistry(window_s=1.0)
        g = reg.gauge("depth")
        g.set(0.0, 4.0)   # held 4.0 over [0, 0.5)
        g.set(0.5, 0.0)   # held 0.0 over [0.5, 1.0)
        reg.finalize(1.0)
        rows = g.series()
        # window [0, 1) plus the zero-width window finalize(1.0) touches
        assert len(rows) == 2
        assert rows[0]["mean"] == pytest.approx(2.0)
        assert rows[0]["max"] == 4.0
        assert rows[1]["t"] == 1.0

    def test_integral_splits_exactly_at_window_boundary(self):
        reg = MetricsRegistry(window_s=1.0)
        g = reg.gauge("depth")
        g.set(0.5, 2.0)  # held across the t=1 boundary
        g.set(1.5, 0.0)
        reg.finalize(2.0)
        rows = {r["t"]: r for r in g.series()}
        assert rows[0.0]["mean"] == pytest.approx(1.0)  # 2.0 for half of [0,1)
        assert rows[1.0]["mean"] == pytest.approx(1.0)  # 2.0 for half of [1,2)

    def test_long_hold_spans_many_windows(self):
        reg = MetricsRegistry(window_s=1.0)
        g = reg.gauge("depth")
        g.set(0.0, 3.0)
        reg.finalize(5.0)
        rows = g.series()
        assert len(rows) == 6  # windows 0..5 (finalize touches window 5)
        assert all(r["mean"] == pytest.approx(3.0) for r in rows[:5])


class TestHistogramInstrument:
    def test_per_window_and_cumulative(self):
        reg = MetricsRegistry(window_s=1.0)
        h = reg.histogram("lat")
        h.observe(0.2, 1.0)
        h.observe(0.8, 2.0)
        h.observe(1.2, 4.0)
        assert h.cumulative.count == 3
        items = h.window_items()
        assert [t for t, _ in items] == [0.0, 1.0]
        assert items[0][1].count == 2
        assert items[1][1].count == 1


class TestRegistry:
    def test_window_index_is_pure_function_of_time(self):
        """The same observations produce the same series whatever order
        instruments were created in — the cross-worker contract."""
        def build(order):
            reg = MetricsRegistry(window_s=0.5)
            for name in order:
                reg.counter(name).inc(0.7, 1)
            reg.histogram("lat").observe(0.3, 1.0)
            reg.finalize(1.0)
            return json.dumps(reg.to_dict(), sort_keys=True)

        assert build(["a", "b", "c"]) == build(["c", "a", "b"])

    def test_events_sorted_in_to_dict(self):
        reg = MetricsRegistry(window_s=1.0)
        reg.event(2.0, "late", kind="x")
        reg.event(1.0, "early")
        d = reg.to_dict()
        assert [e["name"] for e in d["events"]] == ["early", "late"]
        assert d["events"][1]["kind"] == "x"

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            MetricsRegistry(window_s=0.0)
        with pytest.raises(ValueError):
            MetricsRegistry(window_s=float("inf"))

    def test_instruments_iteration_deterministic(self):
        reg = MetricsRegistry(window_s=1.0)
        reg.counter("z")
        reg.gauge("a")
        reg.counter("a", gpu=1)
        keys = [(k, n, tuple(sorted(lab.items())))
                for k, n, lab, _ in reg.instruments()]
        assert keys == sorted(keys)
