"""Exporter formats: Prometheus text, JSONL, CSV."""

import json

from repro.metrics import MetricsRegistry, to_csv, to_jsonl, to_prometheus


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry(window_s=1.0)
    reg.counter("requests_shed", gpu=0).inc(0.5, 3)
    reg.gauge("queue_depth", queue="gpu0-admit").set(0.25, 2.0)
    h = reg.histogram("request_latency")
    h.observe(0.1, 0.001)
    h.observe(0.2, 0.004)
    h.observe(1.3, 0.002)
    reg.event(0.7, "inject:gpu-straggler", gpu=0)
    reg.finalize(2.0)
    return reg


class TestPrometheus:
    def test_counter_gauge_histogram_shapes(self):
        text = to_prometheus(_sample_registry())
        assert '# TYPE repro_requests_shed_total counter' in text
        assert 'repro_requests_shed_total{gpu="0"} 3.0' in text
        assert '# TYPE repro_queue_depth gauge' in text
        assert 'repro_queue_depth{queue="gpu0-admit"} 2.0' in text
        assert '# TYPE repro_request_latency histogram' in text
        assert 'repro_request_latency_bucket{le="+Inf"} 3' in text
        assert 'repro_request_latency_count 3' in text
        assert text.endswith("\n")

    def test_bucket_counts_are_cumulative(self):
        text = to_prometheus(_sample_registry())
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_request_latency_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 3

    def test_empty_registry(self):
        assert to_prometheus(MetricsRegistry(window_s=1.0)) == ""


class TestJsonl:
    def test_rows_parse_and_are_time_ordered(self):
        rows = [json.loads(line)
                for line in to_jsonl(_sample_registry()).splitlines()]
        assert rows
        assert [r["t"] for r in rows] == sorted(r["t"] for r in rows)
        kinds = {r["kind"] for r in rows}
        assert kinds == {"counter", "gauge", "histogram", "event"}
        ev = [r for r in rows if r["kind"] == "event"][0]
        assert ev["name"] == "inject:gpu-straggler"

    def test_byte_deterministic(self):
        assert to_jsonl(_sample_registry()) == to_jsonl(_sample_registry())


class TestCsv:
    def test_header_and_long_form(self):
        text = to_csv(_sample_registry())
        lines = text.splitlines()
        assert lines[0] == "t,kind,name,labels,field,value"
        assert any(",counter,requests_shed,gpu=0,value," in line
                   for line in lines)
        assert any(",histogram,request_latency,,p99," in line
                   for line in lines)
