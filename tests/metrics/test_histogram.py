"""Streaming log-bucketed histogram: accuracy, merging, edge cases."""

import math

import numpy as np
import pytest

from repro.metrics.histogram import DEFAULT_GROWTH, LogHistogram

#: worst-case relative error of a geometric-midpoint estimate
REL_BOUND = math.sqrt(DEFAULT_GROWTH) - 1.0


class TestAccuracy:
    @pytest.mark.parametrize("scale", [1e-6, 1e-3, 1.0, 1e3, 1e6])
    def test_quantiles_within_bucket_bound(self, scale):
        """Estimated quantiles stay within the geometric-bucket error
        bound of the exact quantiles, across nine decades of magnitude."""
        rng = np.random.default_rng(5)
        vals = rng.lognormal(mean=0.0, sigma=1.2, size=4000) * scale
        h = LogHistogram()
        for v in vals:
            h.add(float(v))
        for q in (50, 90, 95, 99):
            exact = float(np.percentile(vals, q))
            est = h.quantile(q)
            assert abs(est - exact) / exact <= REL_BOUND + 1e-12, (
                f"q={q} scale={scale}: {est} vs {exact}"
            )

    def test_extremes_clamped_to_observed_range(self):
        h = LogHistogram()
        for v in (0.5, 2.0, 8.0, 1.5):
            h.add(v)
        assert 0.5 <= h.quantile(0) <= 0.5 * (1 + REL_BOUND)
        assert 8.0 / (1 + REL_BOUND) <= h.quantile(100) <= 8.0
        assert h.count == 4
        assert h.total == pytest.approx(12.0)

    def test_mean(self):
        h = LogHistogram()
        for v in (1.0, 2.0, 3.0):
            h.add(v)
        assert h.mean == pytest.approx(2.0)


class TestEdgeCases:
    def test_empty(self):
        h = LogHistogram()
        assert h.count == 0
        assert math.isnan(h.quantile(50))

    def test_zero_and_negative_underflow(self):
        """Non-positive observations land in the underflow bucket and
        count toward rank but report the recorded minimum."""
        h = LogHistogram()
        h.add(0.0)
        h.add(1.0)
        assert h.count == 2
        assert h.quantile(100) == 1.0

    def test_weighted_add(self):
        a, b = LogHistogram(), LogHistogram()
        for _ in range(5):
            a.add(3.0)
        b.add(3.0, n=5)
        assert a.count == b.count == 5
        assert a.quantiles((50, 99)) == b.quantiles((50, 99))


class TestMerge:
    def test_merge_equals_combined_stream(self):
        rng = np.random.default_rng(9)
        xs = rng.exponential(size=500)
        ys = rng.exponential(size=700) * 10
        a, b, c = LogHistogram(), LogHistogram(), LogHistogram()
        for v in xs:
            a.add(float(v))
            c.add(float(v))
        for v in ys:
            b.add(float(v))
            c.add(float(v))
        a.merge(b)
        assert a.count == c.count
        assert a.total == pytest.approx(c.total)
        for q in (50, 95, 99):
            assert a.quantile(q) == pytest.approx(c.quantile(q))

    def test_to_dict_roundtrip_fields(self):
        h = LogHistogram()
        h.add(2.0)
        d = h.to_dict()
        assert d["count"] == 1
        assert d["sum"] == pytest.approx(2.0)
