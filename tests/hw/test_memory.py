"""Tests for GPU memory tracking and allocator models."""

import pytest

from repro.hw import AllocatorKind, DeviceMemory, alloc_overhead
from repro.hw.memory import POOLED_ALLOC_S, RAW_ALLOC_S
from repro.utils import CapacityError, MB


class TestDeviceMemory:
    def test_reserve_release(self):
        m = DeviceMemory(capacity=100 * MB)
        m.reserve("topo", 60 * MB)
        assert m.free == 40 * MB
        m.release("topo")
        assert m.free == 100 * MB

    def test_oom(self):
        m = DeviceMemory(capacity=10 * MB)
        with pytest.raises(CapacityError):
            m.reserve("big", 11 * MB)

    def test_duplicate_tag(self):
        m = DeviceMemory(capacity=10 * MB)
        m.reserve("x", MB)
        with pytest.raises(CapacityError):
            m.reserve("x", MB)

    def test_release_unknown(self):
        with pytest.raises(CapacityError):
            DeviceMemory(capacity=MB).release("nope")

    def test_fits(self):
        m = DeviceMemory(capacity=10 * MB)
        m.reserve("a", 9 * MB)
        assert m.fits(MB)
        assert not m.fits(2 * MB)

    def test_negative_reserve(self):
        with pytest.raises(ValueError):
            DeviceMemory(capacity=MB).reserve("a", -1)


class TestAllocators:
    def test_raw_much_slower_than_pooled(self):
        """Why Quiver loses to DGL-UVA despite caching (paper §7.2)."""
        n = 1000
        raw = alloc_overhead(AllocatorKind.RAW_CUDA, n)
        pooled = alloc_overhead(AllocatorKind.POOLED, n)
        assert raw > 50 * pooled

    def test_linear_in_count(self):
        assert alloc_overhead(AllocatorKind.RAW_CUDA, 10) == pytest.approx(
            10 * RAW_ALLOC_S
        )
        assert alloc_overhead(AllocatorKind.POOLED, 10) == pytest.approx(
            10 * POOLED_ALLOC_S
        )

    def test_zero_allocations_free(self):
        assert alloc_overhead(AllocatorKind.POOLED, 0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            alloc_overhead(AllocatorKind.POOLED, -1)
