"""Tests for the communication cost model."""

import numpy as np
import pytest

from repro.hw import (
    CommCost,
    CostModel,
    Topology,
    UVA_REQUEST_PAYLOAD,
    UVA_REQUEST_TOTAL,
)
from repro.utils import ConfigError, MB


@pytest.fixture
def model8():
    return CostModel(Topology.dgx1(8))


@pytest.fixture
def model2():
    return CostModel(Topology.dgx1(2))


class TestAllToAll:
    def test_zero_matrix_cheap(self, model8):
        c = model8.alltoall(np.zeros((8, 8)))
        assert c.nvlink_bytes == 0
        assert c.time < 1e-3

    def test_diagonal_is_free(self, model8):
        s = np.diag(np.full(8, 100 * MB))
        c = model8.alltoall(s)
        assert c.nvlink_bytes == 0
        assert c.payload_bytes == 0

    def test_more_bytes_more_time(self, model8):
        s1 = np.full((8, 8), 1 * MB)
        s2 = np.full((8, 8), 10 * MB)
        assert model8.alltoall(s2).time > model8.alltoall(s1).time

    def test_multi_hop_counts_bytes_per_hop(self, model8):
        s = np.zeros((8, 8))
        s[0, 2] = MB  # no direct 0-2 link: 2 hops
        c = model8.alltoall(s)
        assert c.nvlink_bytes == pytest.approx(2 * MB)
        assert c.payload_bytes == pytest.approx(MB)

    def test_single_gpu_free(self):
        m = CostModel(Topology.dgx1(1))
        c = m.alltoall(np.zeros((1, 1)))
        assert c.time == 0 and c.total_bytes == 0

    def test_wrong_shape(self, model8):
        with pytest.raises(ConfigError):
            model8.alltoall(np.zeros((4, 4)))

    def test_balanced_traffic_time_matches_bandwidth(self, model2):
        """2 GPUs, 100 MB each way over a 50 GB/s double link."""
        s = np.array([[0.0, 100 * MB], [100 * MB, 0.0]])
        c = model2.alltoall(s)
        expect = 100 * MB / (2 * 25 * 1024**3)
        assert c.time == pytest.approx(expect, rel=0.5)  # plus latency terms


class TestAllReduce:
    def test_single_gpu_free(self):
        m = CostModel(Topology.dgx1(1))
        assert m.allreduce(MB).time == 0

    def test_bytes_scale_with_gpus(self, model8):
        c = model8.allreduce(MB)
        # ring moves 2(n-1)/n * nbytes per GPU
        assert c.nvlink_bytes == pytest.approx(2 * 7 / 8 * MB * 8)

    def test_monotone_in_bytes(self, model8):
        assert model8.allreduce(10 * MB).time > model8.allreduce(MB).time


class TestUVA:
    def test_read_amplification_small_items(self, model8):
        """An 8-byte adjacency read moves 50 wire bytes: 6.25x."""
        c = model8.uva_gather(0, num_items=1000, item_bytes=8)
        assert c.payload_bytes == 8000
        assert c.pcie_bytes == pytest.approx(1000 * UVA_REQUEST_TOTAL)
        assert c.pcie_bytes / c.payload_bytes == pytest.approx(6.25)

    def test_amplification_large_items(self, model8):
        """512-byte feature rows amplify by 800/512 = 1.5625."""
        c = model8.uva_gather(0, num_items=10, item_bytes=512)
        packets = 512 // UVA_REQUEST_PAYLOAD
        assert c.pcie_bytes == pytest.approx(10 * packets * UVA_REQUEST_TOTAL)
        assert c.pcie_bytes / c.payload_bytes == pytest.approx(
            UVA_REQUEST_TOTAL / UVA_REQUEST_PAYLOAD * 512 / (packets * 32), rel=1e-6
        )

    def test_zero_items_free(self, model8):
        assert model8.uva_gather(0, 0, 512).time == 0

    def test_switch_contention_slows_reads(self, model8):
        solo = model8.uva_gather(0, 10_000, 512, active_gpus=[0])
        shared = model8.uva_gather(0, 10_000, 512, active_gpus=[0, 1])
        assert shared.time > 1.5 * solo.time

    def test_uva_slower_than_nvlink_for_same_payload(self, model8):
        """The core claim: moving the same bytes over PCIe+UVA loses."""
        payload = 64 * MB
        uva = model8.uva_gather(0, num_items=payload // 512, item_bytes=512)
        s = np.zeros((8, 8))
        s[0, 1] = payload
        nvlink = model8.alltoall(s)
        assert uva.time > 5 * nvlink.time


class TestPCIeCopy:
    def test_bulk_copy_no_amplification(self, model8):
        c = model8.pcie_copy(0, MB)
        assert c.pcie_bytes == MB
        assert c.payload_bytes == MB

    def test_peer_copy_multi_hop(self, model8):
        direct = model8.peer_copy(0, 1, MB)
        relay = model8.peer_copy(0, 2, MB)
        assert relay.nvlink_bytes == pytest.approx(2 * MB)
        assert relay.time >= direct.time

    def test_cost_addition(self):
        a = CommCost(time=1.0, nvlink_bytes=10, pcie_bytes=5, payload_bytes=8)
        b = CommCost(time=0.5, nvlink_bytes=1, pcie_bytes=2, payload_bytes=3)
        c = a + b
        assert c.time == 1.5 and c.total_bytes == 18 and c.payload_bytes == 11
