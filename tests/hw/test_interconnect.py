"""Tests for the DGX-1 interconnect model."""

import numpy as np
import pytest

from repro.hw import Topology
from repro.utils import ConfigError, GB


class TestTable1:
    """The topology must reproduce the paper's Table 1 exactly."""

    @pytest.mark.parametrize(
        "num_gpus,nvlink_gbps,pcie_gbps",
        [(1, 0, 32), (2, 100, 32), (4, 400, 64), (8, 1200, 128)],
    )
    def test_aggregate_bandwidths(self, num_gpus, nvlink_gbps, pcie_gbps):
        t = Topology.dgx1(num_gpus)
        assert t.aggregate_nvlink_bandwidth() / GB == pytest.approx(nvlink_gbps)
        assert t.aggregate_pcie_bandwidth() / GB == pytest.approx(pcie_gbps)


class TestStructure:
    def test_v100_has_six_lanes(self):
        t = Topology.dgx1(8)
        assert (t.nvlink.sum(axis=1) == 6).all()

    def test_symmetric(self):
        t = Topology.dgx1(8)
        assert np.array_equal(t.nvlink, t.nvlink.T)

    def test_invalid_gpu_count(self):
        with pytest.raises(ConfigError):
            Topology.dgx1(0)
        with pytest.raises(ConfigError):
            Topology.dgx1(9)

    def test_rejects_asymmetric_matrix(self):
        with pytest.raises(ConfigError):
            Topology(nvlink=np.array([[0, 1], [2, 0]]), pcie_switch=np.array([0, 0]))

    def test_rejects_self_links(self):
        with pytest.raises(ConfigError):
            Topology(nvlink=np.array([[1]]), pcie_switch=np.array([0]))


class TestRouting:
    def test_direct_route(self):
        t = Topology.dgx1(8)
        assert t.route(0, 1) == ((0, 1),)

    def test_local_route_empty(self):
        t = Topology.dgx1(4)
        assert t.route(2, 2) == ()
        assert t.path_bandwidth(2, 2) == float("inf")

    def test_multi_hop_route(self):
        """GPUs 0 and 2 have no direct link in the quad ring: 2 hops."""
        t = Topology.dgx1(4)
        hops = t.route(0, 2)
        assert len(hops) == 2
        assert hops[0][0] == 0 and hops[-1][1] == 2

    def test_all_pairs_connected_at_8(self):
        t = Topology.dgx1(8)
        for i in range(8):
            for j in range(8):
                assert t.has_nvlink_path(i, j)

    def test_path_bandwidth_is_bottleneck(self):
        t = Topology.dgx1(8)
        direct = t.path_bandwidth(0, 1)
        relay = t.path_bandwidth(0, 2)
        assert direct == pytest.approx(2 * 25 * GB)
        assert relay <= direct

    def test_route_out_of_range(self):
        t = Topology.dgx1(2)
        with pytest.raises(ConfigError):
            t.route(0, 5)


class TestPCIe:
    def test_switch_sharing(self):
        t = Topology.dgx1(8)
        # GPUs 0 and 1 share a switch; 0 and 2 do not
        assert t.pcie_sharers(0, [0, 1]) == 2
        assert t.pcie_sharers(0, [0, 2]) == 1

    def test_contention_halves_bandwidth(self):
        """The DGL-UVA 1->2 GPU stall: same-switch GPUs split the uplink."""
        t = Topology.dgx1(8)
        solo = t.pcie_bandwidth(0, [0])
        shared = t.pcie_bandwidth(0, [0, 1])
        assert shared == pytest.approx(solo / 2)

    def test_different_switch_no_contention(self):
        t = Topology.dgx1(8)
        assert t.pcie_bandwidth(0, [0, 2]) == t.pcie_bandwidth(0, [0])

    def test_scale_divides_bandwidth(self):
        t1 = Topology.dgx1(8, scale=1.0)
        t100 = Topology.dgx1(8, scale=100.0)
        assert t100.nvlink_lane_bw == pytest.approx(t1.nvlink_lane_bw / 100)
        assert t100.pcie_switch_bw == pytest.approx(t1.pcie_switch_bw / 100)
