"""Tests for the kernel duration model."""

import pytest

from repro.hw import GPUSpec, KernelSpec, kernel_duration
from repro.hw.kernels import (
    comm_kernel,
    compute_kernel,
    gather_kernel,
    sampling_kernel,
)
from repro.utils import ConfigError


@pytest.fixture
def gpu():
    return GPUSpec()


class TestDurationModel:
    def test_saturation(self, gpu):
        """Fig 2: beyond sat_threads, extra threads buy nothing."""
        spec = sampling_kernel(gpu, num_tasks=100_000, fanout=10)
        t_sat = kernel_duration(spec, spec.sat_threads)
        t_full = kernel_duration(spec, gpu.total_threads)
        assert t_full == pytest.approx(t_sat)

    def test_scaling_below_saturation(self, gpu):
        spec = sampling_kernel(gpu, num_tasks=100_000, fanout=10)
        t_half = kernel_duration(spec, spec.sat_threads // 2)
        t_sat = kernel_duration(spec, spec.sat_threads)
        # half the threads -> about twice the work time (modulo launch)
        assert (t_half - spec.launch_s) == pytest.approx(
            2 * (t_sat - spec.launch_s), rel=1e-6
        )

    def test_fig2_shape(self, gpu):
        """Duration is non-increasing in threads and flattens early."""
        spec = gather_kernel(gpu, nbytes=64 * 1024 * 1024)
        threads = [256, 512, 1024, 2048, 4096, 5120]
        times = [kernel_duration(spec, t) for t in threads]
        assert all(a >= b - 1e-12 for a, b in zip(times, times[1:]))
        assert times[-1] == pytest.approx(times[-2])  # flat tail

    def test_launch_overhead_floor(self, gpu):
        spec = sampling_kernel(gpu, num_tasks=0, fanout=5)
        assert kernel_duration(spec) == pytest.approx(spec.launch_s)

    def test_invalid_threads(self, gpu):
        spec = sampling_kernel(gpu, num_tasks=10, fanout=5)
        with pytest.raises(ConfigError):
            kernel_duration(spec, 0)

    def test_invalid_spec(self):
        with pytest.raises(ConfigError):
            KernelSpec(name="x", work=-1, full_rate=1, sat_threads=1, threads=1)
        with pytest.raises(ConfigError):
            KernelSpec(name="x", work=1, full_rate=0, sat_threads=1, threads=1)


class TestBuilders:
    def test_comm_kernel_has_tiny_footprint(self, gpu):
        k = comm_kernel(gpu, duration=1e-3)
        assert k.threads <= 256
        assert kernel_duration(k) == pytest.approx(1e-3)

    def test_compute_footprint_scales_with_work(self, gpu):
        big = compute_kernel(gpu, flops=1e11)
        small = compute_kernel(gpu, flops=1e6)
        assert big.threads == gpu.total_threads
        assert small.threads < gpu.total_threads  # light GNN GEMMs

    def test_compute_footprint_scale(self, gpu):
        shrunk = compute_kernel(gpu, flops=1e8, footprint_scale=1 / 32)
        full = compute_kernel(gpu, flops=1e8)
        assert shrunk.threads >= full.threads

    def test_scaled_gpu_shrinks_memory_not_rates(self, gpu):
        """Scaling preserves kernel rates; only capacity shrinks."""
        scaled = gpu.scaled(100)
        assert scaled.memory_bytes == pytest.approx(gpu.memory_bytes / 100)
        a = kernel_duration(sampling_kernel(gpu, 10_000, 10))
        b = kernel_duration(sampling_kernel(scaled, 10_000, 10))
        assert a == pytest.approx(b)

    def test_v100_thread_count(self, gpu):
        assert gpu.total_threads == 5120  # the number quoted in Fig 2
