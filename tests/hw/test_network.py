"""Tests for the cross-server network model (NICs + cluster topology)."""

import numpy as np
import pytest

from repro.hw import ClusterTopology, CostModel, NIC_PRESETS, NICSpec, Topology
from repro.utils import GB
from repro.utils.errors import ConfigError


def cluster(s: int = 2, g: int = 2, nic: str = "ethernet") -> ClusterTopology:
    return ClusterTopology(num_servers=s, server=Topology.dgx1(g),
                           nic=NICSpec.preset(nic))


class TestNICSpec:
    def test_presets(self):
        eth = NICSpec.preset("ethernet")
        ib = NICSpec.preset("infiniband")
        assert eth.bandwidth == 12.5 * GB  # 100 GbE, = legacy NetworkSpec
        assert ib.bandwidth > eth.bandwidth
        assert ib.latency < eth.latency
        assert set(NIC_PRESETS) == {"ethernet", "infiniband"}

    def test_unknown_preset(self):
        with pytest.raises(ConfigError):
            NICSpec.preset("carrier-pigeon")

    def test_degraded_divides_bandwidth(self):
        nic = NICSpec.preset("ethernet")
        slow = nic.degraded(4.0)
        assert slow.bandwidth == nic.bandwidth / 4.0
        assert slow.latency == nic.latency
        with pytest.raises(ConfigError):
            nic.degraded(0.5)

    def test_scaled_is_identity(self):
        # the network does not shrink with the dataset
        nic = NICSpec.preset("infiniband")
        assert nic.scaled(0.01) == nic

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            NICSpec(bandwidth=0.0)


class TestClusterTopology:
    def test_indexing(self):
        ct = cluster(s=3, g=4)
        assert ct.num_gpus == 12
        assert ct.gpus_per_server == 4
        assert ct.server_of(0) == 0
        assert ct.server_of(11) == 2
        assert ct.gateway_of(2) == 8
        with pytest.raises(ConfigError):
            ct.server_of(12)
        with pytest.raises(ConfigError):
            ct.gateway_of(3)

    def test_flat_is_block_diagonal(self):
        ct = cluster(s=2, g=4)
        flat = ct.flat()
        assert flat.num_gpus == 8
        server = ct.server.nvlink
        assert np.array_equal(flat.nvlink[:4, :4], server)
        assert np.array_equal(flat.nvlink[4:, 4:], server)
        assert not flat.nvlink[:4, 4:].any()  # no cross-server NVLink
        assert not flat.nvlink[4:, :4].any()

    def test_flat_pcie_switches_are_per_server(self):
        ct = cluster(s=2, g=4)
        flat = ct.flat()
        first = set(flat.pcie_switch[:4].tolist())
        second = set(flat.pcie_switch[4:].tolist())
        assert not first & second  # servers never share a PCIe switch

    def test_cross_server_route_raises(self):
        """Unlowered cross-server traffic must fail at pricing time,
        not be silently priced as NVLink."""
        flat = cluster().flat()
        with pytest.raises(ConfigError):
            flat.route(0, 2)
        m = np.zeros((4, 4))
        m[0, 3] = 1024.0
        with pytest.raises(ConfigError):
            CostModel(flat).alltoall(m)

    def test_nic_sharers(self):
        ct = cluster(s=2, g=4)
        assert ct.nic_sharers(0) == 4  # all GPUs active by default
        assert ct.nic_sharers(0, active_gpus=[0, 1, 5]) == 2
        assert ct.nic_bandwidth(0, active_gpus=[0]) == ct.nic.bandwidth
        assert ct.nic_bandwidth(1) == ct.nic.bandwidth / 4

    def test_exchange_time_alpha_beta(self):
        ct = cluster(s=2)
        nbytes = 1.0 * GB
        m = np.array([[0.0, nbytes], [0.0, 0.0]])
        expect = ct.nic.latency + nbytes / ct.nic.bandwidth
        assert ct.exchange_time(m) == pytest.approx(expect)

    def test_exchange_time_busiest_nic_dominates(self):
        ct = cluster(s=3)
        m = np.zeros((3, 3))
        m[0, 1] = m[0, 2] = 1.0 * GB  # server 0 sends 2 GB total
        m[1, 2] = 1.0 * GB
        expect = ct.nic.latency + 2.0 * GB / ct.nic.bandwidth
        assert ct.exchange_time(m) == pytest.approx(expect)

    def test_exchange_time_empty(self):
        ct = cluster(s=2)
        assert ct.exchange_time(np.zeros((2, 2))) == 0.0
        with pytest.raises(ConfigError):
            ct.exchange_time(np.zeros((3, 3)))

    def test_degraded_network_factor(self):
        ct = cluster()
        slow = ct.degraded(network_factor=4.0)
        m = np.array([[0.0, 1.0 * GB], [0.0, 0.0]])
        assert slow.exchange_time(m) > ct.exchange_time(m)
        # NVLink untouched unless asked
        assert np.array_equal(slow.server.nvlink, ct.server.nvlink)

    def test_infiniband_faster_than_ethernet(self):
        m = np.array([[0.0, 1.0 * GB], [0.0, 0.0]])
        assert (cluster(nic="infiniband").exchange_time(m)
                < cluster(nic="ethernet").exchange_time(m))


class TestInjectorNetworkLink:
    def test_network_degrade_hits_network_ops_only(self):
        """LinkDegrade(link="network") scales ops with network bytes and
        leaves NVLink-only ops alone."""
        from types import SimpleNamespace

        from repro.chaos.faults import FaultPlan, LinkDegrade
        from repro.chaos.injector import FaultInjector
        from repro.core.cost import OpCost

        plan = FaultPlan((
            LinkDegrade(0.0, link="network", duration=10.0, factor=4.0),
        ))
        inj = FaultInjector(plan)
        inj.sim = SimpleNamespace(now=1.0)  # mid-fault
        net_op = OpCost(label="x-net", per_gpu=np.zeros(4), stage=1e-3,
                        threads=1, host=True, network_bytes=1024.0)
        nvl_op = OpCost(label="x-intra", per_gpu=np.zeros(4), stage=1e-3,
                        threads=1, nvlink_bytes=1024.0)
        assert inj.comm_scale(0, net_op) == 4.0
        assert inj.comm_scale(0, nvl_op) == 1.0
