"""Tests for the NCCL vs NVSHMEM communication-backend choice (§3.2)."""

import numpy as np
import pytest

from repro.hw import CostModel, Topology
from repro.utils import ConfigError, MB


def full_mesh(n: int) -> Topology:
    nv = np.ones((n, n), dtype=np.int64) - np.eye(n, dtype=np.int64)
    return Topology(nvlink=nv, pcie_switch=np.zeros(n, dtype=np.int64))


class TestBackends:
    def test_nvshmem_rejected_without_full_mesh(self):
        """The DGX-1 quad ring has no 0-2 link: NVSHMEM must refuse —
        the paper's stated reason for choosing NCCL."""
        with pytest.raises(ConfigError):
            CostModel(Topology.dgx1(4), backend="nvshmem")

    def test_nvshmem_ok_on_two_gpus(self):
        # 2 directly-linked GPUs form a (trivial) full mesh
        CostModel(Topology.dgx1(2), backend="nvshmem")

    def test_nvshmem_ok_on_synthetic_mesh(self):
        CostModel(full_mesh(4), backend="nvshmem")

    def test_nvshmem_lower_launch_overhead(self):
        t = full_mesh(4)
        nccl = CostModel(t, backend="nccl")
        shm = CostModel(t, backend="nvshmem")
        s = np.full((4, 4), 1024.0)
        np.fill_diagonal(s, 0)
        assert shm.alltoall(s).time < nccl.alltoall(s).time

    def test_same_bandwidth_term(self):
        """For big transfers the backends converge (same links)."""
        t = full_mesh(4)
        nccl = CostModel(t, backend="nccl")
        shm = CostModel(t, backend="nvshmem")
        s = np.full((4, 4), 256.0 * MB)
        np.fill_diagonal(s, 0)
        a, b = nccl.alltoall(s).time, shm.alltoall(s).time
        assert b < a
        assert b > 0.95 * a

    def test_unknown_backend(self):
        with pytest.raises(ConfigError):
            CostModel(Topology.dgx1(2), backend="magic")

    def test_default_is_nccl(self):
        assert CostModel(Topology.dgx1(8)).backend == "nccl"
