"""Tests for the multi-core run executor (:mod:`repro.parallel`)."""

import numpy as np
import pytest

from repro.parallel import (
    RunSpec,
    adopt_system,
    default_workers,
    derive_seed,
    register_handler,
    run_tasks,
)
from repro.parallel import _SYSTEM_CACHE, _reset_worker_state
from repro.utils import ConfigError, WorkerError


def _echo(spec):
    return ("echo", spec.label, spec.seed, spec.payload.get("x"))


def _boom(spec):
    raise ValueError(f"boom in {spec.label}")


register_handler("t-echo", _echo)
register_handler("t-boom", _boom)


class TestDeriveSeed:
    def test_pure_function_of_root_and_index(self):
        assert derive_seed(7, 3) == derive_seed(7, 3)

    def test_distinct_across_indices_and_roots(self):
        seeds = {derive_seed(0, i) for i in range(64)}
        assert len(seeds) == 64
        assert derive_seed(0, 1) != derive_seed(1, 1)

    def test_matches_seedsequence_spawn_key(self):
        seq = np.random.SeedSequence(entropy=5, spawn_key=(2,))
        assert derive_seed(5, 2) == int(seq.generate_state(1, np.uint64)[0])

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigError):
            derive_seed(0, -1)


class TestDefaultWorkers:
    def test_at_least_one_and_capped(self):
        assert default_workers() >= 1
        assert default_workers(cap=2) <= 2
        assert default_workers(cap=1) == 1


class TestRunTasks:
    def specs(self, n=5):
        return [
            RunSpec(kind="t-echo", label=f"run{i}",
                    seed=derive_seed(0, i), payload={"x": i})
            for i in range(n)
        ]

    def test_empty(self):
        assert run_tasks([], workers=4) == []

    def test_inline_results_in_spec_order(self):
        out = run_tasks(self.specs(), workers=1)
        assert [r[3] for r in out] == [0, 1, 2, 3, 4]

    def test_pool_results_in_spec_order(self):
        out = run_tasks(self.specs(), workers=2)
        assert out == run_tasks(self.specs(), workers=1)

    def test_single_spec_runs_inline_even_with_workers(self):
        out = run_tasks(self.specs(1), workers=4)
        assert out == [("echo", "run0", derive_seed(0, 0), 0)]

    def test_unknown_kind_raises_config_error_inline(self):
        with pytest.raises(WorkerError, match="no-such-kind"):
            run_tasks([RunSpec(kind="no-such-kind", label="x")], workers=1)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_crash_surfaces_child_traceback(self, workers):
        specs = self.specs(2) + [RunSpec(kind="t-boom", label="bad")]
        with pytest.raises(WorkerError) as err:
            run_tasks(specs, workers=workers)
        assert err.value.label == "bad"
        assert "ValueError: boom in bad" in err.value.child_traceback
        assert "Traceback" in err.value.child_traceback

    def test_worker_state_reset_drops_adopted_systems(self):
        class FakeSystem:
            name = "fake"
            config = ("cfg",)

        adopt_system(FakeSystem())
        assert _SYSTEM_CACHE
        _reset_worker_state()
        assert not _SYSTEM_CACHE


class TestRunSpecPickling:
    def test_spec_round_trips_through_pickle(self):
        import pickle

        from repro.core import RunConfig

        spec = RunSpec(
            kind="serve_point", label="qps500", seed=derive_seed(3, 0),
            payload={"system": "DSP", "config": RunConfig(dataset="tiny"),
                     "qps": 500.0},
            trace_path="/tmp/t-qps500.json",
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
