"""Tests for hierarchical CSP trace lowering (cluster collectives)."""

import numpy as np
import pytest

from repro.cluster import lower_trace
from repro.cluster.csp import _split_alltoall, _split_allreduce
from repro.sampling.ops import (
    AllReduce,
    AllToAll,
    NetworkTransfer,
    OpTrace,
    ParallelGroup,
)
from repro.utils.errors import ReproError

S, G = 2, 2
K = S * G


def dense(seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    m = rng.uniform(10.0, 100.0, size=(K, K))
    np.fill_diagonal(m, 0.0)
    return m


def block_diagonal(m: np.ndarray) -> bool:
    blocks = m.reshape(S, G, S, G)
    for a in range(S):
        for b in range(S):
            if a != b and blocks[a, :, b, :].any():
                return False
    return True


def cross_bytes(m: np.ndarray) -> float:
    blocks = m.reshape(S, G, S, G)
    ids = np.arange(S)
    return float(m.sum() - blocks[ids, :, ids, :].sum())


class TestSplitAllToAll:
    def test_byte_conservation(self):
        m = dense()
        ops = _split_alltoall(m, S, G, "x")
        intra, net, scatter = ops
        cross = cross_bytes(m)
        within = m.sum() - cross
        assert intra.matrix.sum() == pytest.approx(within + cross)
        assert net.matrix.sum() == pytest.approx(cross)
        assert scatter.matrix.sum() == pytest.approx(cross)

    def test_stages_are_block_diagonal(self):
        """Both intra stages must be priceable on the block-diagonal
        topology — no cross-server NVLink entries survive lowering."""
        ops = _split_alltoall(dense(), S, G, "x")
        assert block_diagonal(ops[0].matrix)
        assert block_diagonal(ops[2].matrix)

    def test_network_stage_shape_and_labels(self):
        ops = _split_alltoall(dense(), S, G, "shuffle")
        assert isinstance(ops[1], NetworkTransfer)
        assert ops[1].matrix.shape == (S, S)
        assert [op.label for op in ops] == [
            "shuffle-intra", "shuffle-net", "shuffle-scatter"
        ]

    def test_local_only_matrix_passes_through(self):
        m = np.zeros((K, K))
        m[0, 1] = m[2, 3] = 64.0  # within-server only
        ops = _split_alltoall(m, S, G, "x")
        assert len(ops) == 1
        assert isinstance(ops[0], AllToAll)
        assert np.array_equal(ops[0].matrix, m)

    def test_gateway_funnel(self):
        """Every sender's cross-server bytes ride to its server's
        gateway (local GPU 0) in stage 1."""
        m = np.zeros((K, K))
        m[1, 2] = 100.0  # GPU 1 (server 0) -> GPU 2 (server 1)
        intra, net, *rest = _split_alltoall(m, S, G, "x")
        assert intra.matrix[1, 0] == 100.0  # funnel to gateway GPU 0
        assert net.matrix[0, 1] == 100.0
        # destination is server 1's own gateway: no scatter op needed
        assert not rest

    def test_scatter_only_when_non_gateway_destination(self):
        m = np.zeros((K, K))
        m[1, 3] = 100.0  # destination GPU 3 is not server 1's gateway
        ops = _split_alltoall(m, S, G, "x")
        assert len(ops) == 3
        assert ops[2].matrix[2, 3] == 100.0  # gateway 2 -> GPU 3

    def test_bad_shape_raises(self):
        with pytest.raises(ReproError):
            _split_alltoall(np.zeros((3, 3)), S, G, "x")


class TestSplitAllReduce:
    def test_ring_bytes(self):
        nbytes = 1e6
        ops = _split_allreduce(AllReduce(nbytes, label="grad"), S, G)
        rs, net, ag = ops
        # intra phases: each GPU ships (G-1)/G of its shard to the local
        # successor; network ring: each server ships 2(S-1)/S once
        assert rs.matrix.sum() == pytest.approx(K * (G - 1) / G * nbytes)
        assert net.matrix.sum() == pytest.approx(S * 2 * (S - 1) / S * nbytes)
        assert ag.matrix.sum() == pytest.approx(K * (G - 1) / G * nbytes)
        assert block_diagonal(rs.matrix)
        assert block_diagonal(ag.matrix)

    def test_single_gpu_servers_skip_intra_phases(self):
        ops = _split_allreduce(AllReduce(1e6, label="grad"), 4, 1)
        assert len(ops) == 1
        assert isinstance(ops[0], NetworkTransfer)


class TestLowerTrace:
    def test_single_server_identity_object(self):
        trace = OpTrace()
        trace.add(AllToAll(dense(), label="x"))
        assert lower_trace(trace, 1, K) is trace

    def test_lowered_trace_structure(self):
        trace = OpTrace()
        trace.add(AllToAll(dense(), label="x"))
        trace.add(AllReduce(1e6, label="grad"))
        lowered = lower_trace(trace, S, G)
        kinds = [type(op).__name__ for op in lowered]
        assert kinds == ["AllToAll", "NetworkTransfer", "AllToAll",
                        "AllToAll", "NetworkTransfer", "AllToAll"]

    def test_parallel_group_recursed(self):
        trace = OpTrace()
        trace.add(ParallelGroup(
            branches=((AllToAll(dense(), label="hot"),), ()),
            label="feature-load",
        ))
        lowered = lower_trace(trace, S, G)
        (group,) = list(lowered)
        assert isinstance(group, ParallelGroup)
        hot = group.branches[0]
        assert [type(op).__name__ for op in hot] == [
            "AllToAll", "NetworkTransfer", "AllToAll"
        ]
        assert group.branches[1] == ()

    def test_deterministic(self):
        trace = OpTrace()
        trace.add(AllToAll(dense(), label="x"))
        a = lower_trace(trace, S, G)
        b = lower_trace(trace, S, G)
        for op_a, op_b in zip(a, b):
            assert np.array_equal(op_a.matrix, op_b.matrix)

    def test_lowered_trace_is_priceable(self):
        """The cluster engine prices the lowered trace; the raw trace
        (cross-server NVLink) must refuse."""
        from repro.cluster import ClusterCostEngine
        from repro.hw import ClusterTopology, NICSpec, Topology
        from repro.hw.network import multi_server_cluster
        from repro.utils.errors import ConfigError

        ct = ClusterTopology(num_servers=S, server=Topology.dgx1(G),
                             nic=NICSpec.preset("ethernet"))
        engine = ClusterCostEngine(multi_server_cluster(ct), ct)
        trace = OpTrace()
        trace.add(AllToAll(dense(), label="x"))
        with pytest.raises(ConfigError):
            engine.trace_cost(trace)
        costs = engine.trace_cost(lower_trace(trace, S, G))
        assert sum(c.network_bytes for c in costs) == pytest.approx(
            cross_bytes(dense())
        )
        assert all(c.stage >= 0.0 for c in costs)
