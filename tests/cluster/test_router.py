"""Tests for the cluster request router and its policies."""

import numpy as np
import pytest

from repro.cluster import ROUTING_POLICIES, ClusterRouter, RouterConfig
from repro.serve.workload import Request
from repro.utils.errors import ConfigError


def stream(n: int = 64, rate: float = 1000.0, nodes: int = 50):
    rng = np.random.default_rng(0)
    return [
        Request(rid=i, node=int(rng.integers(nodes)), arrival=i / rate)
        for i in range(n)
    ]


class TestRouterConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RouterConfig(num_replicas=0)
        with pytest.raises(ConfigError):
            RouterConfig(policy="carousel")
        with pytest.raises(ConfigError):
            RouterConfig(window_s=0.0)
        assert set(ROUTING_POLICIES) == {"random", "least-loaded", "affinity"}


class TestPolicies:
    def test_single_replica_short_circuits(self):
        for policy in ROUTING_POLICIES:
            router = ClusterRouter(RouterConfig(num_replicas=1, policy=policy))
            assert not router.assign(stream(16)).any()

    @pytest.mark.parametrize("policy", ROUTING_POLICIES)
    def test_deterministic(self, policy):
        cfg = RouterConfig(num_replicas=3, policy=policy, seed=5)
        a = ClusterRouter(cfg).assign(stream())
        b = ClusterRouter(cfg).assign(stream())
        assert np.array_equal(a, b)
        assert a.min() >= 0 and a.max() < 3

    def test_affinity_groups_by_node(self):
        router = ClusterRouter(RouterConfig(num_replicas=2, policy="affinity"))
        requests = stream()
        assign = router.assign(requests)
        by_node = {}
        for req, rep in zip(requests, assign):
            by_node.setdefault(req.node, set()).add(int(rep))
        assert all(len(reps) == 1 for reps in by_node.values())

    def test_affinity_map_overrides_hashing(self):
        amap = np.zeros(50, dtype=np.int64)
        amap[25:] = 1
        router = ClusterRouter(
            RouterConfig(num_replicas=2, policy="affinity"), affinity_map=amap
        )
        for req, rep in zip(stream(), router.assign(stream())):
            assert rep == amap[req.node]

    def test_affinity_map_out_of_range(self):
        with pytest.raises(ConfigError):
            ClusterRouter(RouterConfig(num_replicas=2, policy="affinity"),
                          affinity_map=np.array([0, 1, 2]))

    def test_least_loaded_balances(self):
        router = ClusterRouter(
            RouterConfig(num_replicas=4, policy="least-loaded")
        )
        assign = router.assign(stream(64))
        counts = np.bincount(assign, minlength=4)
        # a load-counting router must never starve a replica
        assert counts.min() >= len(assign) // 8
        assert counts.max() - counts.min() <= 2

    def test_least_loaded_window_forgets(self):
        """Requests older than the trailing window stop counting as
        in-flight, so a long-idle stream re-balances from scratch."""
        cfg = RouterConfig(num_replicas=2, policy="least-loaded",
                           window_s=0.01)
        router = ClusterRouter(cfg)
        early = [Request(rid=0, node=0, arrival=0.000),
                 Request(rid=1, node=1, arrival=0.001)]
        late = Request(rid=2, node=2, arrival=10.0)
        router.assign(early)
        # both replicas look empty again; LRU tie-break picks replica 0
        # (the least recently used of the two)
        assert router.route(late) == 0

    def test_random_spreads(self):
        router = ClusterRouter(RouterConfig(num_replicas=4, policy="random",
                                            seed=1))
        counts = np.bincount(router.assign(stream(256)), minlength=4)
        assert (counts > 0).all()
