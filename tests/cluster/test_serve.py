"""Tests for replicated serving behind the cluster router."""

import json

import numpy as np
import pytest

from repro.cluster import (
    RouterConfig,
    affinity_map,
    knee_vs_replicas,
    replicated_qps_sweep,
    serve_replicated,
)
from repro.core import RunConfig, build_system
from repro.serve import ServeConfig, WorkloadConfig, make_workload
from repro.serve.sweep import serve_once
from repro.utils.errors import ConfigError

CFG = RunConfig(dataset="tiny", num_gpus=2, hidden_dim=16, batch_size=8,
                fanout=(5, 3))
SERVE = ServeConfig(functional=True, check_invariants=True)


@pytest.fixture(scope="module")
def system():
    return build_system("DSP", CFG)


@pytest.fixture(scope="module")
def workload(system):
    return make_workload(WorkloadConfig(num_requests=64, seed=1),
                         system.data.train_nodes)


class TestSingleReplicaOracle:
    def test_one_replica_is_serve_once(self, system, workload):
        """R=1 must delegate to serve_once — bit-identical reports."""
        rep = serve_replicated(system, workload, 1000.0,
                               RouterConfig(num_replicas=1), config=SERVE)
        ref = serve_once(system, workload, 1000.0, config=SERVE)
        assert (json.dumps(rep.to_dict(), sort_keys=True)
                == json.dumps(ref.to_dict(), sort_keys=True))

    def test_tracer_rejected_with_replicas(self, system, workload):
        with pytest.raises(ConfigError):
            serve_replicated(system, workload, 1000.0,
                             RouterConfig(num_replicas=2), config=SERVE,
                             tracer=object())


class TestReplicatedServe:
    @pytest.mark.parametrize("policy", ["random", "least-loaded", "affinity"])
    def test_covers_every_request_once(self, system, workload, policy):
        rep = serve_replicated(
            system, workload, 1000.0,
            RouterConfig(num_replicas=2, policy=policy), config=SERVE,
        )
        assert rep.offered == 64
        assert rep.completed + rep.shed == rep.offered

    def test_deterministic(self, system, workload):
        router = RouterConfig(num_replicas=2)
        a = serve_replicated(system, workload, 2000.0, router, config=SERVE)
        b = serve_replicated(system, workload, 2000.0, router, config=SERVE)
        assert (json.dumps(a.to_dict(), sort_keys=True)
                == json.dumps(b.to_dict(), sort_keys=True))

    def test_metrics_merged_across_replicas(self, system, workload):
        rep = serve_replicated(
            system, workload, 2000.0, RouterConfig(num_replicas=2),
            config=SERVE, metrics=True,
        )
        assert rep.metrics is not None
        assert "slo_minutes_violated" in rep.metrics["slo"]
        assert len(rep.metrics["replicas"]) == 2

    def test_affinity_map_from_partition(self, system):
        amap = affinity_map(system, 2)
        assert amap is not None
        assert len(amap) == system.data.num_nodes
        assert amap.min() >= 0 and amap.max() < 2
        assert affinity_map(system, 1) is None


class TestSweepAndKnee:
    def test_workers_byte_identical(self, system, workload):
        router = RouterConfig(num_replicas=2)
        serial = replicated_qps_sweep(system, workload, [500, 2000], router,
                                      config=SERVE, workers=1)
        parallel = replicated_qps_sweep(system, workload, [500, 2000], router,
                                        config=SERVE, workers=2)
        a = json.dumps([p.report.to_dict() for p in serial], sort_keys=True)
        b = json.dumps([p.report.to_dict() for p in parallel], sort_keys=True)
        assert a == b

    def test_empty_ladder_rejected(self, system, workload):
        with pytest.raises(ConfigError):
            replicated_qps_sweep(system, workload, [],
                                 RouterConfig(num_replicas=2))

    def test_knee_vs_replicas_shape(self, system, workload):
        knees = knee_vs_replicas(system, workload, [500.0, 2000.0], (2, 1),
                                 config=SERVE)
        assert sorted(knees) == [1, 2]
        assert all(np.isfinite(v) for v in knees.values())
