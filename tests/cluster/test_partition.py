"""Tests for hierarchical (server -> GPU) partitioning."""

import numpy as np
import pytest

from repro.cluster import HierarchicalPartition, hierarchical_partition
from repro.cluster.partition import _cut
from repro.graph.datasets import load_dataset
from repro.graph.partition import Partition
from repro.utils.errors import PartitionError

GRAPH = load_dataset("tiny").graph


class TestHierarchicalPartition:
    @pytest.mark.parametrize("method", ["metis", "ldg", "hash"])
    def test_validates_clean(self, method):
        hp = hierarchical_partition(GRAPH, 2, 2, method=method, seed=0)
        hp.validate()  # nesting + byte conservation, must not raise
        hp.validate(row_bytes=512.0)

    def test_nesting_invariant(self):
        hp = hierarchical_partition(GRAPH, 2, 4, method="metis", seed=1)
        assert np.array_equal(hp.gpu.assignment // 4, hp.server.assignment)
        assert hp.num_servers == 2
        assert hp.num_gpus == 8
        assert hp.server_of_gpu(0) == 0
        assert hp.server_of_gpu(7) == 1

    def test_byte_conservation_across_levels(self):
        hp = hierarchical_partition(GRAPH, 2, 2, method="ldg", seed=0)
        rollup = hp.gpu.part_sizes.reshape(2, 2).sum(axis=1)
        assert np.array_equal(rollup, hp.server.part_sizes)
        assert hp.gpu.part_sizes.sum() == GRAPH.num_nodes

    @pytest.mark.parametrize("method", ["metis", "ldg"])
    def test_imbalance_bounded(self, method):
        hp = hierarchical_partition(GRAPH, 2, 2, method=method, seed=0)
        server_imb, gpu_imb = hp.imbalance()
        assert 1.0 <= server_imb <= 1.5
        assert 1.0 <= gpu_imb <= 1.5

    @pytest.mark.parametrize("method", ["metis", "ldg", "hash"])
    def test_single_server_is_flat_oracle(self, method):
        """A 1-server cluster must reproduce the flat partitioner
        bit-identically — same seed, same assignment array."""
        hp = hierarchical_partition(GRAPH, 1, 4, method=method, seed=7)
        flat = _cut(GRAPH, 4, method, 7)
        assert np.array_equal(hp.gpu.assignment, flat.assignment)
        assert not hp.server.assignment.any()

    def test_deterministic(self):
        a = hierarchical_partition(GRAPH, 2, 2, method="metis", seed=3)
        b = hierarchical_partition(GRAPH, 2, 2, method="metis", seed=3)
        assert np.array_equal(a.gpu.assignment, b.gpu.assignment)

    def test_seed_matters(self):
        a = hierarchical_partition(GRAPH, 2, 2, method="hash", seed=0)
        b = hierarchical_partition(GRAPH, 2, 2, method="hash", seed=1)
        assert not np.array_equal(a.gpu.assignment, b.gpu.assignment)

    def test_rejects_bad_shapes(self):
        with pytest.raises(PartitionError):
            hierarchical_partition(GRAPH, 0, 2)
        with pytest.raises(PartitionError):
            hierarchical_partition(GRAPH, 2, 2, method="voronoi")

    def test_rejects_server_smaller_than_its_gpus(self):
        # 4 nodes over 2 servers cannot feed 8 GPUs each
        from repro.graph.csr import CSRGraph

        small = CSRGraph.from_edges(
            np.array([0, 1, 2, 3]), np.array([1, 2, 3, 0]), num_nodes=4
        )
        with pytest.raises(PartitionError):
            hierarchical_partition(small, 2, 8, method="hash", seed=0)

    def test_constructor_checks_nesting_shapes(self):
        n = GRAPH.num_nodes
        server = Partition(np.zeros(n, dtype=np.int64), 1)
        gpu = Partition(np.zeros(n, dtype=np.int64), 3)
        with pytest.raises(PartitionError):
            HierarchicalPartition(server, gpu, 2)  # 3 != 1 * 2

    def test_validate_catches_broken_nesting(self):
        hp = hierarchical_partition(GRAPH, 2, 2, method="hash", seed=0)
        broken = np.array(hp.gpu.assignment)
        victim = int(np.flatnonzero(hp.server.assignment == 0)[0])
        broken[victim] = 3  # server-0 node assigned to a server-1 GPU
        bad = HierarchicalPartition(
            hp.server, Partition(broken, 4), hp.gpus_per_server
        )
        with pytest.raises(PartitionError):
            bad.validate()
