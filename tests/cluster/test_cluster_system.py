"""End-to-end tests of multi-node training systems."""

import numpy as np
import pytest

from repro.core import RunConfig, build_system
from repro.utils.errors import ConfigError

CFG2 = RunConfig(dataset="tiny", num_gpus=2, num_nodes=2, hidden_dim=16,
                 batch_size=8, fanout=(5, 3), partitioner="ldg")


class TestConfig:
    def test_total_gpus(self):
        assert CFG2.total_gpus == 4
        assert RunConfig(dataset="tiny").total_gpus == RunConfig(
            dataset="tiny").num_gpus

    def test_validation(self):
        with pytest.raises(ConfigError):
            RunConfig(dataset="tiny", num_nodes=0)
        with pytest.raises(ConfigError):
            RunConfig(dataset="tiny", nic="token-ring")
        with pytest.raises(ConfigError):
            # NVSHMEM needs a full NVLink mesh; a cluster has none
            RunConfig(dataset="tiny", num_nodes=2, comm_backend="nvshmem")


class TestMultiNodeDSP:
    @pytest.fixture(scope="class")
    def system(self):
        return build_system("DSP", CFG2)

    def test_spans_all_gpus(self, system):
        assert system.k == 4
        assert system.engine.k == 4
        assert system.cluster_topology is not None
        assert system.cluster_topology.num_servers == 2
        assert system.hierarchy is not None
        system.hierarchy.validate()

    def test_epoch_pays_network_bytes(self, system):
        m = system.run_epoch(max_batches=2, functional=True)
        assert m.epoch_time > 0.0
        assert m.network_bytes > 0.0  # cross-server traffic is real
        assert m.nvlink_bytes > 0.0  # intra-server shuffles remain

    def test_single_node_pays_none(self):
        single = build_system("DSP", CFG2.with_(num_nodes=1))
        m = single.run_epoch(max_batches=2, functional=True)
        assert m.network_bytes == 0.0
        assert single.cluster_topology is None

    def test_pull_variant_supports_cluster(self):
        system = build_system("DSP-Pull", CFG2)
        m = system.run_epoch(max_batches=2, functional=False)
        assert m.network_bytes > 0.0

    def test_infiniband_beats_ethernet(self):
        eth = build_system("DSP", CFG2)
        ib = build_system("DSP", CFG2.with_(nic="infiniband"))
        t_eth = eth.run_epoch(max_batches=2, functional=False).epoch_time
        t_ib = ib.run_epoch(max_batches=2, functional=False).epoch_time
        assert t_ib < t_eth

    def test_inference_lowered(self, system):
        from repro.core.inference import full_graph_inference

        preds, trace = full_graph_inference(system)
        assert preds.shape[0] == system.data.num_nodes
        costs = system.engine.trace_cost(trace)  # must price cleanly
        assert sum(c.network_bytes for c in costs) > 0.0

    def test_deterministic(self):
        a = build_system("DSP", CFG2).run_epoch(max_batches=2,
                                                functional=False)
        b = build_system("DSP", CFG2).run_epoch(max_batches=2,
                                                functional=False)
        assert a.epoch_time == b.epoch_time
        assert a.network_bytes == b.network_bytes


class TestBaselineGating:
    @pytest.mark.parametrize("name", ["DGL-UVA", "PyG", "Quiver"])
    def test_single_server_systems_refuse(self, name):
        with pytest.raises(ConfigError):
            build_system(name, CFG2)


class TestClusterChaos:
    def test_net_degrade_scenario(self):
        from repro.chaos.scenarios import run_scenario

        r = run_scenario("DSP", "net-degrade", CFG2, max_batches=2)
        assert r["outcome"] == "completed"
        assert r["slowdown"] >= 1.0
        assert r["invariants"]["clean"]

    def test_net_flap_serve_scenario(self):
        from repro.chaos.scenarios import run_scenario

        r = run_scenario("DSP", "net-flap", CFG2, requests=32, qps=2000.0)
        assert r["outcome"] == "completed"
        assert r["invariants"]["clean"]
        assert r["baseline_invariants"]["clean"]
