"""Cross-module integration and failure-injection tests."""

import numpy as np
import pytest

from repro.core import RunConfig, build_system
from repro.graph import load_dataset
from repro.sampling import random_walk
from repro.utils import CapacityError


CFG = RunConfig(dataset="tiny", num_gpus=4, hidden_dim=16, batch_size=16,
                fanout=(5, 3), seed=2)


class TestEndToEndConsistency:
    def test_dsp_and_uva_see_equivalent_data(self):
        """The renumbered dataset is the same data: same label histogram,
        same degree distribution, same feature values per node."""
        dsp = build_system("DSP", CFG)
        uva = build_system("DGL-UVA", CFG)
        assert np.array_equal(
            np.bincount(dsp.data.labels), np.bincount(uva.data.labels)
        )
        assert np.array_equal(
            np.sort(dsp.data.graph.degrees), np.sort(uva.data.graph.degrees)
        )
        v_new = 7
        v_old = int(dsp.numbering.new_to_old[v_new])
        assert np.array_equal(
            dsp.data.features[v_new], uva.data.features[v_old]
        )

    def test_train_split_identical_across_systems(self):
        """Systems train on exactly the same node split (modulo the
        renumbering), the precondition for Fig 9a's coinciding curves."""
        dsp = build_system("DSP", CFG)
        uva = build_system("DGL-UVA", CFG)
        assert np.array_equal(
            np.sort(dsp.numbering.new_to_old[dsp.data.train_nodes]),
            uva.data.train_nodes,
        )
        # and every epoch covers the same number of seeds
        assert sum(map(len, dsp._global_batches())) == sum(
            map(len, uva._global_batches())
        )

    def test_pipeline_functional_result_matches_sequential(self):
        """The pipeline reorders *time*, never data: after one epoch the
        model parameters are identical to DSP-Seq's."""
        a = build_system("DSP", CFG)
        b = build_system("DSP-Seq", CFG)
        a.run_epoch()
        b.run_epoch()
        for pa, pb in zip(a.models[0].state(), b.models[0].state()):
            np.testing.assert_allclose(pa, pb, rtol=1e-6)

    def test_biased_dsp_trains(self):
        cfg = CFG.with_(biased=True)
        m = build_system("DSP", cfg).run_epoch()
        assert np.isfinite(m.loss)

    def test_gat_model_end_to_end(self):
        cfg = CFG.with_(model="gat")
        m = build_system("DSP", cfg).run_epoch()
        assert np.isfinite(m.loss)

    def test_layerwise_scheme_end_to_end(self):
        cfg = CFG.with_(scheme="layer", fanout=(40, 40))
        m = build_system("DSP", cfg).run_epoch()
        assert np.isfinite(m.loss)
        assert m.epoch_time > 0

    def test_without_replacement_end_to_end(self):
        cfg = CFG.with_(replace=False)
        m = build_system("DSP", cfg).run_epoch()
        assert np.isfinite(m.loss)

    def test_random_walk_on_dsp_layout(self):
        dsp = build_system("DSP", CFG)
        starts = [
            np.arange(dsp.sampler.part_offsets[g],
                      dsp.sampler.part_offsets[g] + 4)
            for g in range(4)
        ]
        paths, trace = random_walk(dsp.sampler, starts, length=3, seed=0)
        graph = dsp.data.graph
        for mat in paths:
            for row in mat:
                for t in range(3):
                    if row[t + 1] >= 0:
                        assert row[t + 1] in graph.neighbors(int(row[t]))


class TestCheckpointing:
    def test_roundtrip(self, tmp_path):
        a = build_system("DSP", CFG)
        a.run_epoch()
        ckpt = tmp_path / "model.npz"
        a.save_checkpoint(ckpt)

        b = build_system("DSP", CFG)
        b.load_checkpoint(ckpt)
        assert b.batches_seen == a.batches_seen
        for pa, pb in zip(a.models[0].state(), b.models[0].state()):
            np.testing.assert_array_equal(pa, pb)
        # every replica was restored
        for model in b.models:
            for pa, pm in zip(a.models[0].state(), model.state()):
                np.testing.assert_array_equal(pa, pm)

    def test_resume_continues_training(self, tmp_path):
        a = build_system("DSP", CFG)
        m1 = a.run_epoch()
        ckpt = tmp_path / "model.npz"
        a.save_checkpoint(ckpt)
        b = build_system("DSP", CFG)
        b.load_checkpoint(ckpt)
        m2 = b.run_epoch()
        assert np.isfinite(m2.loss)
        assert b.batches_seen > a.batches_seen - 1


class TestFailureInjection:
    def test_oversized_feature_budget_raises(self):
        cfg = CFG.with_(feature_cache_bytes=1e15)
        with pytest.raises(CapacityError):
            build_system("DSP", cfg)

    def test_corrupt_dataset_cache_recovers(self, tmp_path, monkeypatch):
        """A truncated .npz in the cache must be regenerated, not crash."""
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        from repro.graph.datasets import (
            DATASET_SPECS, _load_cached, _spec_key,
        )

        _load_cached.cache_clear()
        spec = DATASET_SPECS["tiny"]
        path = tmp_path / f"{_spec_key(spec)}.npz"
        path.write_bytes(b"not a real npz file")
        ds = load_dataset("tiny")
        assert ds.num_nodes == spec.num_nodes
        _load_cached.cache_clear()

    def test_eval_on_empty_nodes(self):
        dsp = build_system("DSP", CFG)
        acc = dsp.evaluate(np.array([], dtype=np.int64))
        assert np.isnan(acc)

    def test_zero_fanout_layer(self):
        """A zero fan-out layer yields empty blocks but must not crash."""
        cfg = CFG.with_(fanout=(3, 0))
        m = build_system("DSP", cfg).run_epoch(max_batches=1, functional=False)
        assert m.epoch_time > 0

    def test_tiny_memory_gpu_still_plans(self):
        """Planner degrades gracefully when almost nothing fits."""
        from repro.cache.policies import rank_by_degree
        from repro.core.layout import plan_layout
        from repro.graph import metis_partition, renumber_by_partition
        from repro.hw import Cluster

        ds = load_dataset("tiny")
        part = metis_partition(ds.graph, 2, rng=0)
        rgraph, _, nb = renumber_by_partition(ds.graph, part)
        pds = ds.permuted(nb.old_to_new, rgraph)
        cluster = Cluster.dgx1(2, scale=1e6)  # ~16 KB GPUs
        layout = plan_layout(
            pds, nb.part_offsets, cluster, rank_by_degree(rgraph),
            graph=rgraph,
        )
        assert layout.topology_coverage < 1.0
        # only a sliver cached, and the plan never exceeds capacity
        assert layout.store.total_cached < ds.num_nodes // 4
        for mem in layout.memory:
            assert mem.used <= mem.capacity
