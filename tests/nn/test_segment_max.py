"""Tests for segment_max and the GraphSAGE pool aggregator."""

import numpy as np
import pytest

from repro.nn import GraphSAGE, Adam, Tensor, cross_entropy, functional as F
from repro.nn.gnn import SAGEConv
from repro.utils import ReproError


class TestSegmentMax:
    SEG = np.array([0, 0, 1, 2, 2, 2])

    def test_forward(self):
        x = Tensor(np.array([[1.], [5.], [2.], [7.], [3.], [9.]],
                            dtype=np.float32))
        out = F.segment_max(x, self.SEG, 3)
        assert out.data.ravel().tolist() == [5.0, 2.0, 9.0]

    def test_empty_segment_zero(self):
        x = Tensor(np.ones((2, 1), dtype=np.float32))
        out = F.segment_max(x, np.array([0, 0]), 3)
        assert out.data.ravel().tolist() == [1.0, 0.0, 0.0]

    def test_grad_routes_to_argmax(self):
        x = Tensor(np.array([[1., 4.], [5., 2.], [3., 3.]],
                            dtype=np.float32), requires_grad=True)
        out = F.segment_max(x, np.array([0, 0, 1]), 2)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [[0, 1], [1, 0], [1, 1]])

    def test_grad_matches_numeric(self):
        rng = np.random.default_rng(0)
        x0 = rng.normal(size=(6, 3)).astype(np.float64)
        seg = np.array([0, 1, 0, 2, 2, 1])
        w = rng.normal(size=(3, 3)).astype(np.float32)

        def f(arr):
            t = Tensor(arr)
            return (F.segment_max(t, seg, 3) * Tensor(w)).sum().item()

        t = Tensor(x0.copy(), requires_grad=True)
        (F.segment_max(t, seg, 3) * Tensor(w)).sum().backward()
        eps = 1e-4
        for i in (0, 7, 17):
            flat = x0.reshape(-1).copy()
            flat[i] += eps
            up = f(flat.reshape(6, 3))
            flat[i] -= 2 * eps
            down = f(flat.reshape(6, 3))
            num = (up - down) / (2 * eps)
            assert t.grad.reshape(-1)[i] == pytest.approx(num, abs=1e-2)

    def test_tie_single_winner(self):
        """Duplicated max values route gradient to exactly one row."""
        x = Tensor(np.array([[2.0], [2.0]], dtype=np.float32),
                   requires_grad=True)
        F.segment_max(x, np.array([0, 0]), 1).sum().backward()
        assert x.grad.sum() == pytest.approx(1.0)

    def test_seg_mismatch(self):
        with pytest.raises(ReproError):
            F.segment_max(Tensor(np.ones((3, 1))), np.array([0, 1]), 2)

    def test_1d_input(self):
        x = Tensor(np.array([1.0, 3.0, 2.0], dtype=np.float32),
                   requires_grad=True)
        out = F.segment_max(x, np.array([0, 0, 1]), 2)
        assert out.data.tolist() == [3.0, 2.0]
        out.sum().backward()
        assert x.grad.tolist() == [0.0, 1.0, 1.0]


class TestPoolAggregator:
    @pytest.fixture(scope="class")
    def batch(self):
        from repro.graph import load_dataset
        from repro.sampling import CollectiveSampler, CSPConfig
        from repro.sampling.local import GraphPatch

        ds = load_dataset("tiny")
        sampler = CollectiveSampler(
            [GraphPatch.full(ds.graph)], np.array([0, ds.num_nodes]), seed=0
        )
        seeds = np.arange(64, dtype=np.int64)
        samples, _, _ = sampler.sample([seeds], CSPConfig(fanout=(5, 3)))
        return ds, samples[0]

    def test_pool_model_learns(self, batch):
        ds, sample = batch
        model = GraphSAGE(ds.feature_dim, 32, ds.num_classes, num_layers=2,
                          seed=0, aggregator="pool")
        feats = Tensor(ds.features[sample.all_nodes])
        labels = ds.labels[sample.seeds]
        opt = Adam(model.parameters(), lr=5e-3)
        first = None
        for _ in range(20):
            opt.zero_grad()
            loss = cross_entropy(model(sample, feats), labels)
            first = first or loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first

    def test_pool_has_extra_parameters_and_flops(self):
        mean = SAGEConv(8, 4, aggregator="mean", rng=0)
        pool = SAGEConv(8, 4, aggregator="pool", rng=0)
        assert len(pool.parameters()) > len(mean.parameters())
        assert pool.flops_per_dst > mean.flops_per_dst

    def test_unknown_aggregator(self):
        with pytest.raises(ReproError):
            SAGEConv(4, 4, aggregator="magic")
