"""Tests for GNN layers, models, loss, optimizers and data parallelism."""

import numpy as np
import pytest

from repro.graph import load_dataset
from repro.nn import (
    GAT,
    GCN,
    GraphSAGE,
    Adam,
    SGD,
    Tensor,
    accuracy,
    allreduce_gradients,
    clone_model,
    cross_entropy,
    gradient_nbytes,
)
from repro.nn.modules import Linear, Module, Parameter
from repro.sampling import CollectiveSampler, CSPConfig
from repro.sampling.local import GraphPatch
from repro.utils import ReproError


@pytest.fixture(scope="module")
def batch():
    """A real sampled mini-batch from the tiny dataset (single GPU)."""
    ds = load_dataset("tiny")
    sampler = CollectiveSampler(
        [GraphPatch.full(ds.graph)], np.array([0, ds.num_nodes]), seed=0
    )
    seeds = np.arange(0, 64, dtype=np.int64)
    samples, _, _ = sampler.sample([seeds], CSPConfig(fanout=(5, 3)))
    sample = samples[0]
    feats = Tensor(ds.features[sample.all_nodes])
    labels = ds.labels[seeds]
    return ds, sample, feats, labels


class TestModules:
    def test_linear_shapes(self):
        lin = Linear(4, 7, rng=0)
        out = lin(Tensor(np.ones((3, 4), dtype=np.float32)))
        assert out.shape == (3, 7)

    def test_parameters_deterministic_order(self):
        class M(Module):
            def __init__(self):
                self.a = Linear(2, 3, rng=0)
                self.b = Linear(3, 1, rng=1)

        m = M()
        assert m.parameters() == m.parameters()
        assert len(m.parameters()) == 4

    def test_state_roundtrip(self):
        lin = Linear(3, 3, rng=0)
        state = lin.state()
        lin.weight.data[:] = 0
        lin.load_state(state)
        assert lin.weight.data.any()

    def test_bad_dims(self):
        with pytest.raises(ReproError):
            Linear(0, 3)


@pytest.mark.parametrize("model_cls", [GraphSAGE, GCN, GAT])
class TestModels:
    def test_forward_shape(self, batch, model_cls):
        ds, sample, feats, labels = batch
        model = model_cls(ds.feature_dim, 32, ds.num_classes, num_layers=2, seed=0)
        out = model(sample, feats)
        assert out.shape == (len(sample.seeds), ds.num_classes)

    def test_backward_populates_all_grads(self, batch, model_cls):
        ds, sample, feats, labels = batch
        model = model_cls(ds.feature_dim, 32, ds.num_classes, num_layers=2, seed=0)
        loss = cross_entropy(model(sample, feats), labels)
        loss.backward()
        for p in model.parameters():
            assert p.grad is not None
            assert np.isfinite(p.grad).all()

    def test_one_step_reduces_loss(self, batch, model_cls):
        ds, sample, feats, labels = batch
        model = model_cls(ds.feature_dim, 32, ds.num_classes, num_layers=2, seed=0)
        opt = Adam(model.parameters(), lr=5e-3)
        first = None
        for _ in range(20):
            opt.zero_grad()
            loss = cross_entropy(model(sample, feats), labels)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first

    def test_layer_mismatch_rejected(self, batch, model_cls):
        ds, sample, feats, labels = batch
        model = model_cls(ds.feature_dim, 32, ds.num_classes, num_layers=3, seed=0)
        with pytest.raises(ReproError):
            model(sample, feats)

    def test_flops_positive(self, batch, model_cls):
        ds, sample, feats, _ = batch
        model = model_cls(ds.feature_dim, 32, ds.num_classes, num_layers=2, seed=0)
        assert model.forward_flops(sample) > 0


class TestMultiHeadGAT:
    def test_forward_shape(self, batch):
        ds, sample, feats, labels = batch
        model = GAT(ds.feature_dim, 32, ds.num_classes, num_layers=2,
                    seed=0, num_heads=4)
        out = model(sample, feats)
        assert out.shape == (len(sample.seeds), ds.num_classes)

    def test_heads_have_independent_parameters(self, batch):
        ds, *_ = batch
        model = GAT(ds.feature_dim, 32, ds.num_classes, num_layers=2,
                    seed=0, num_heads=2)
        single = GAT(ds.feature_dim, 32, ds.num_classes, num_layers=2,
                     seed=0, num_heads=1)
        assert len(model.parameters()) == 2 * len(single.parameters())

    def test_trains(self, batch):
        ds, sample, feats, labels = batch
        model = GAT(ds.feature_dim, 32, ds.num_classes, num_layers=2,
                    seed=1, num_heads=2)
        opt = Adam(model.parameters(), lr=5e-3)
        first = None
        for _ in range(15):
            opt.zero_grad()
            loss = cross_entropy(model(sample, feats), labels)
            first = first or loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first

    def test_invalid_head_config(self):
        from repro.nn import GATConv
        from repro.utils import ReproError

        with pytest.raises(ReproError):
            GATConv(8, 9, num_heads=2)
        with pytest.raises(ReproError):
            GATConv(8, 8, num_heads=0)


class TestTrainingConvergence:
    def test_sage_learns_tiny_dataset(self, batch):
        """End-to-end: a 2-layer SAGE beats random guessing comfortably."""
        ds, sample, feats, labels = batch
        model = GraphSAGE(ds.feature_dim, 32, ds.num_classes, num_layers=2, seed=1)
        opt = Adam(model.parameters(), lr=1e-2)
        for _ in range(60):
            opt.zero_grad()
            out = model(sample, feats)
            cross_entropy(out, labels).backward()
            opt.step()
        acc = accuracy(model(sample, feats, training=False), labels)
        assert acc > 2.5 / ds.num_classes

    def test_gcn_lighter_than_sage(self, batch):
        """Table 5 rationale: GCN does less compute than GraphSAGE."""
        ds, sample, _, _ = batch
        sage = GraphSAGE(ds.feature_dim, 32, ds.num_classes, num_layers=2, seed=0)
        gcn = GCN(ds.feature_dim, 32, ds.num_classes, num_layers=2, seed=0)
        assert gcn.forward_flops(sample) < sage.forward_flops(sample)


class TestLossAndOptim:
    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 2.0]], dtype=np.float32))
        loss = cross_entropy(logits, np.array([0, 1]))
        expect = -np.log(np.exp(2) / (np.exp(2) + 1))
        assert loss.item() == pytest.approx(expect, rel=1e-5)

    def test_cross_entropy_grad_numeric(self):
        rng = np.random.default_rng(3)
        x0 = rng.normal(size=(4, 3)).astype(np.float32)
        labels = np.array([0, 2, 1, 1])
        t = Tensor(x0.copy(), requires_grad=True)
        cross_entropy(t, labels).backward()
        eps = 1e-3
        for i in (0, 5, 11):
            flat = x0.reshape(-1).copy()
            flat[i] += eps
            up = cross_entropy(Tensor(flat.reshape(4, 3)), labels).item()
            flat[i] -= 2 * eps
            down = cross_entropy(Tensor(flat.reshape(4, 3)), labels).item()
            num = (up - down) / (2 * eps)
            assert t.grad.reshape(-1)[i] == pytest.approx(num, abs=2e-3)

    def test_empty_batch_rejected(self):
        with pytest.raises(ReproError):
            cross_entropy(Tensor(np.zeros((0, 3))), np.array([], dtype=np.int64))

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_sgd_momentum_moves_further(self):
        def run(momentum):
            p = Parameter(np.array([1.0]))
            opt = SGD([p], lr=0.1, momentum=momentum)
            for _ in range(5):
                p.grad = np.array([1.0], dtype=np.float32)
                opt.step()
            return p.data[0]

        assert run(0.9) < run(0.0)

    def test_adam_converges_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = Adam([p], lr=0.3)
        for _ in range(200):
            p.grad = 2 * p.data  # d/dp p^2
            opt.step()
        assert abs(p.data[0]) < 0.1

    def test_bad_hyperparams(self):
        with pytest.raises(ReproError):
            SGD([], lr=-1)
        with pytest.raises(ReproError):
            Adam([], lr=0)


class TestDataParallel:
    def test_clone_shares_nothing(self):
        model = Linear(3, 2, rng=0)
        replicas = clone_model(model, 3)
        replicas[1].weight.data[:] = 0
        assert replicas[0].weight.data.any()

    def test_allreduce_averages(self):
        model = Linear(2, 2, rng=0)
        replicas = clone_model(model, 2)
        replicas[0].weight.grad = np.ones((2, 2), dtype=np.float32)
        replicas[1].weight.grad = 3 * np.ones((2, 2), dtype=np.float32)
        allreduce_gradients(replicas)
        np.testing.assert_allclose(replicas[0].weight.grad, 2.0)
        np.testing.assert_allclose(replicas[1].weight.grad, 2.0)

    def test_allreduce_missing_grad_counts_as_zero(self):
        model = Linear(2, 2, rng=0)
        replicas = clone_model(model, 2)
        replicas[0].weight.grad = np.full((2, 2), 4.0, dtype=np.float32)
        allreduce_gradients(replicas)
        np.testing.assert_allclose(replicas[1].weight.grad, 2.0)

    def test_bsp_equivalence(self):
        """BSP: 2 replicas on half batches == 1 model on the full batch."""
        rng = np.random.default_rng(0)
        x = rng.normal(size=(8, 3)).astype(np.float32)
        y = np.array([0, 1, 0, 1, 1, 0, 1, 0])

        solo = Linear(3, 2, rng=7)
        duo = clone_model(solo, 2)

        loss = cross_entropy(solo(Tensor(x)), y)
        loss.backward()

        for r, sl in zip(duo, (slice(0, 4), slice(4, 8))):
            cross_entropy(r(Tensor(x[sl])), y[sl]).backward()
        allreduce_gradients(duo)
        np.testing.assert_allclose(
            duo[0].weight.grad, solo.weight.grad, rtol=1e-4, atol=1e-6
        )

    def test_gradient_nbytes(self):
        model = Linear(4, 4, rng=0)
        assert gradient_nbytes(model) == (16 + 4) * 4
