"""Autograd correctness: analytic vs numeric gradients."""

import numpy as np
import pytest

from repro.nn import Tensor, functional as F
from repro.utils import ReproError


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar fn w.r.t. x."""
    g = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gf = g.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        gf[i] = (up - down) / (2 * eps)
    return g


def check_grad(build, x0: np.ndarray, rtol=2e-2, atol=2e-3):
    """build(tensor) -> scalar Tensor; compares backward vs numeric."""
    t = Tensor(x0.copy(), requires_grad=True)
    out = build(t)
    out.backward()

    def scalar_fn(arr):
        return build(Tensor(arr)).item()

    num = numeric_grad(scalar_fn, x0.astype(np.float64))
    np.testing.assert_allclose(t.grad, num, rtol=rtol, atol=atol)


RNG = np.random.default_rng(0)


class TestBasicOps:
    def test_add(self):
        b = RNG.normal(size=(3, 4)).astype(np.float32)
        check_grad(lambda t: (t + Tensor(b)).sum(), RNG.normal(size=(3, 4)))

    def test_add_broadcast_bias(self):
        x = RNG.normal(size=(5, 3))
        bias = Tensor(RNG.normal(size=(3,)).astype(np.float32), requires_grad=True)
        t = Tensor(x.astype(np.float32), requires_grad=True)
        out = (t + bias).sum()
        out.backward()
        np.testing.assert_allclose(bias.grad, np.full(3, 5.0), rtol=1e-5)

    def test_sub_and_neg(self):
        b = RNG.normal(size=(3, 3)).astype(np.float32)
        check_grad(lambda t: ((-t) - Tensor(b)).sum(), RNG.normal(size=(3, 3)))

    def test_mul_elementwise(self):
        b = RNG.normal(size=(4, 2)).astype(np.float32)
        check_grad(lambda t: (t * Tensor(b)).sum(), RNG.normal(size=(4, 2)))

    def test_mul_scalar(self):
        check_grad(lambda t: (t * 3.5).sum(), RNG.normal(size=(4,)))

    def test_matmul(self):
        b = RNG.normal(size=(4, 2)).astype(np.float32)
        check_grad(lambda t: (t @ Tensor(b)).sum(), RNG.normal(size=(3, 4)))

    def test_matmul_grad_of_rhs(self):
        a = RNG.normal(size=(3, 4)).astype(np.float32)
        check_grad(lambda t: (Tensor(a) @ t).sum(), RNG.normal(size=(4, 2)))

    def test_mean(self):
        check_grad(lambda t: t.mean(), RNG.normal(size=(6,)))

    def test_chained_reuse(self):
        """A tensor used twice must accumulate both paths."""
        check_grad(lambda t: ((t * t) + t).sum(), RNG.normal(size=(5,)))

    def test_backward_requires_scalar(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ReproError):
            (t * 2.0).backward()

    def test_no_grad_when_not_required(self):
        t = Tensor(np.ones(3))
        out = (t * 2.0).sum()
        out.backward()
        assert t.grad is None


class TestActivations:
    def test_relu(self):
        x = RNG.normal(size=(5, 3))
        x[np.abs(x) < 0.1] = 0.5  # keep away from the kink
        check_grad(lambda t: F.relu(t).sum(), x)

    def test_leaky_relu(self):
        x = RNG.normal(size=(5, 3))
        x[np.abs(x) < 0.1] = 0.5
        check_grad(lambda t: F.leaky_relu(t, 0.2).sum(), x)

    def test_log_softmax_rows_normalize(self):
        x = Tensor(RNG.normal(size=(4, 6)).astype(np.float32))
        out = F.log_softmax(x)
        np.testing.assert_allclose(np.exp(out.data).sum(axis=1), 1.0, rtol=1e-5)

    def test_log_softmax_grad(self):
        w = RNG.normal(size=(3, 4)).astype(np.float32)
        check_grad(lambda t: (F.log_softmax(t) * Tensor(w)).sum(),
                   RNG.normal(size=(3, 4)))

    def test_dropout_eval_identity(self):
        x = Tensor(RNG.normal(size=(10, 4)).astype(np.float32))
        out = F.dropout(x, 0.5, rng=0, training=False)
        assert out is x

    def test_dropout_scales(self):
        x = Tensor(np.ones((2000, 1), dtype=np.float32))
        out = F.dropout(x, 0.5, rng=0)
        assert out.data.mean() == pytest.approx(1.0, rel=0.1)
        assert (out.data == 0).mean() == pytest.approx(0.5, abs=0.05)

    def test_dropout_bad_p(self):
        with pytest.raises(ReproError):
            F.dropout(Tensor(np.ones(3)), 1.0)


class TestSegmentOps:
    SEG = np.array([0, 0, 1, 2, 2, 2])

    def test_segment_sum_forward(self):
        x = Tensor(np.arange(6, dtype=np.float32).reshape(6, 1))
        out = F.segment_sum(x, self.SEG, 3)
        assert out.data.ravel().tolist() == [1.0, 2.0, 12.0]

    def test_segment_sum_grad(self):
        w = RNG.normal(size=(3, 2)).astype(np.float32)
        check_grad(lambda t: (F.segment_sum(t, self.SEG, 3) * Tensor(w)).sum(),
                   RNG.normal(size=(6, 2)))

    def test_segment_mean_forward_and_empty(self):
        x = Tensor(np.arange(6, dtype=np.float32).reshape(6, 1))
        out = F.segment_mean(x, self.SEG, 4)  # segment 3 empty
        assert out.data.ravel().tolist() == [0.5, 2.0, 4.0, 0.0]

    def test_segment_mean_grad(self):
        w = RNG.normal(size=(3, 2)).astype(np.float32)
        check_grad(lambda t: (F.segment_mean(t, self.SEG, 3) * Tensor(w)).sum(),
                   RNG.normal(size=(6, 2)))

    def test_segment_softmax_normalizes(self):
        x = Tensor(RNG.normal(size=(6,)).astype(np.float32))
        out = F.segment_softmax(x, self.SEG, 3)
        sums = np.zeros(3)
        np.add.at(sums, self.SEG, out.data)
        np.testing.assert_allclose(sums, 1.0, rtol=1e-5)

    def test_segment_softmax_grad(self):
        w = RNG.normal(size=(6,)).astype(np.float32)
        check_grad(lambda t: (F.segment_softmax(t, self.SEG, 3) * Tensor(w)).sum(),
                   RNG.normal(size=(6,)))

    def test_gather_rows_grad_accumulates_duplicates(self):
        idx = np.array([0, 0, 2])
        t = Tensor(np.ones((3, 2), dtype=np.float32), requires_grad=True)
        out = F.gather_rows(t, idx).sum()
        out.backward()
        np.testing.assert_allclose(t.grad, [[2, 2], [0, 0], [1, 1]])

    def test_concat_grad(self):
        a = RNG.normal(size=(3, 2)).astype(np.float32)
        check_grad(
            lambda t: (F.concat([t, Tensor(a)]) * 1.0).sum(),
            RNG.normal(size=(3, 2)),
        )

    def test_segment_mismatch_rejected(self):
        with pytest.raises(ReproError):
            F.segment_sum(Tensor(np.ones((3, 1))), np.array([0, 1]), 2)
