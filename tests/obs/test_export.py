"""Tests for the Chrome trace-event and plain-text exporters."""

import json

from repro.obs import Tracer, to_chrome_trace, to_text, write_chrome_trace


def make_tracer():
    tr = Tracer()
    tr.declare_track("sampler0-gpu0", group="gpu0", sort=0)
    tr.declare_track("trainer-gpu0", group="gpu0", sort=1)
    tr.declare_track("trainer-gpu1", group="gpu1", sort=1)
    tr.span("sampler0-gpu0", "sample-op", cat="sample", start=0.0, end=1.0,
            batch=0)
    tr.span("sampler0-gpu0", "wait", cat="rendezvous-wait", start=0.2, end=0.8)
    tr.span("trainer-gpu1", "train-op", cat="train", start=1.0, end=2.0)
    tr.instant("trainer-gpu0", "mark", ts=0.5)
    tr.counter("gpu0-sm", "used", ts=0.1, used=128)
    tr.counter("link-bytes", "cumulative", ts=1.5, nvlink=100.0)
    return tr


class TestChromeExport:
    def test_structure(self):
        doc = to_chrome_trace(make_tracer())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X", "i", "C"} <= phases

    def test_one_process_per_gpu(self):
        doc = to_chrome_trace(make_tracer())
        names = {e["args"]["name"]: e["pid"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        # gpu0, gpu1 from declared/derived groups, global for link-bytes
        assert set(names) == {"gpu0", "gpu1", "global"}
        assert names["gpu0"] != names["gpu1"]
        # tracks of the same GPU share the pid, different GPUs do not
        threads = {e["args"]["name"]: e["pid"] for e in doc["traceEvents"]
                   if e["ph"] == "M" and e["name"] == "thread_name"}
        assert threads["sampler0-gpu0"] == threads["trainer-gpu0"]
        assert threads["trainer-gpu0"] != threads["trainer-gpu1"]

    def test_counter_attached_to_gpu_pid(self):
        doc = to_chrome_trace(make_tracer())
        pids = {e["args"]["name"]: e["pid"] for e in doc["traceEvents"]
                if e["ph"] == "M" and e["name"] == "process_name"}
        sm = [e for e in doc["traceEvents"] if e["ph"] == "C"
              and "gpu0-sm" in e["name"]]
        assert sm and sm[0]["pid"] == pids["gpu0"]
        assert sm[0]["args"] == {"used": 128}

    def test_timestamps_monotonic_and_microseconds(self):
        doc = to_chrome_trace(make_tracer())
        body = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        ts = [e["ts"] for e in body]
        assert ts == sorted(ts)
        span = next(e for e in body if e["name"] == "train-op")
        assert span["ts"] == 1.0e6 and span["dur"] == 1.0e6

    def test_spans_nest_within_track(self):
        doc = to_chrome_trace(make_tracer())
        xs = [e for e in doc["traceEvents"]
              if e["ph"] == "X" and e["args"].get("batch") == 0
              or e["ph"] == "X" and e["name"] == "wait"]
        outer = next(e for e in xs if e["name"] == "sample-op")
        inner = next(e for e in xs if e["name"] == "wait")
        assert (outer["pid"], outer["tid"]) == (inner["pid"], inner["tid"])
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_write_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(make_tracer(), path)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestTextExport:
    def test_lists_tracks_and_spans(self):
        text = to_text(make_tracer())
        assert "== sampler0-gpu0 ==" in text
        assert "sample-op" in text and "train-op" in text
        assert "rendezvous-wait" in text

    def test_empty_tracer(self):
        assert to_text(Tracer()) == ""


class TestReadChromeTrace:
    def test_round_trip_preserves_analyses(self, tmp_path):
        """Spans, instants and counters survive write -> read with
        their tracks and categories, so the breakdown analyses agree."""
        from repro.obs import read_chrome_trace, stall_breakdown

        path = tmp_path / "trace.json"
        src = make_tracer()
        write_chrome_trace(src, path)
        rt = read_chrome_trace(path)
        assert rt.end_time() == src.end_time()
        spans = sorted((e.track, e.name, e.cat, e.start, e.end)
                       for e in rt.spans())
        assert ("sampler0-gpu0", "wait", "rendezvous-wait", 0.2, 0.8) in spans
        assert ("trainer-gpu1", "train-op", "train", 1.0, 2.0) in spans
        # counter names lose their track prefix again on the way back
        counters = [(e.track, e.name, e.values) for e in rt.counters()]
        assert ("gpu0-sm", "used", {"used": 128}) in counters
        b1 = stall_breakdown(src, src.end_time(), 2)
        b2 = stall_breakdown(rt, rt.end_time(), 2)
        for a, b in zip(b1, b2):
            assert a.busy == b.busy and a.stalls == b.stalls

    def test_missing_file_raises_filenotfound(self, tmp_path):
        import pytest

        from repro.obs import read_chrome_trace

        with pytest.raises(FileNotFoundError):
            read_chrome_trace(tmp_path / "nope.json")

    def test_corrupt_and_non_trace_raise_configerror(self, tmp_path):
        import pytest

        from repro.obs import read_chrome_trace
        from repro.utils import ConfigError

        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigError):
            read_chrome_trace(bad)
        nottrace = tmp_path / "nt.json"
        nottrace.write_text('{"foo": 1}')
        with pytest.raises(ConfigError):
            read_chrome_trace(nottrace)
