"""Tests for the Chrome trace-event and plain-text exporters."""

import json

from repro.obs import Tracer, to_chrome_trace, to_text, write_chrome_trace


def make_tracer():
    tr = Tracer()
    tr.declare_track("sampler0-gpu0", group="gpu0", sort=0)
    tr.declare_track("trainer-gpu0", group="gpu0", sort=1)
    tr.declare_track("trainer-gpu1", group="gpu1", sort=1)
    tr.span("sampler0-gpu0", "sample-op", cat="sample", start=0.0, end=1.0,
            batch=0)
    tr.span("sampler0-gpu0", "wait", cat="rendezvous-wait", start=0.2, end=0.8)
    tr.span("trainer-gpu1", "train-op", cat="train", start=1.0, end=2.0)
    tr.instant("trainer-gpu0", "mark", ts=0.5)
    tr.counter("gpu0-sm", "used", ts=0.1, used=128)
    tr.counter("link-bytes", "cumulative", ts=1.5, nvlink=100.0)
    return tr


class TestChromeExport:
    def test_structure(self):
        doc = to_chrome_trace(make_tracer())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"M", "X", "i", "C"} <= phases

    def test_one_process_per_gpu(self):
        doc = to_chrome_trace(make_tracer())
        names = {e["args"]["name"]: e["pid"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        # gpu0, gpu1 from declared/derived groups, global for link-bytes
        assert set(names) == {"gpu0", "gpu1", "global"}
        assert names["gpu0"] != names["gpu1"]
        # tracks of the same GPU share the pid, different GPUs do not
        threads = {e["args"]["name"]: e["pid"] for e in doc["traceEvents"]
                   if e["ph"] == "M" and e["name"] == "thread_name"}
        assert threads["sampler0-gpu0"] == threads["trainer-gpu0"]
        assert threads["trainer-gpu0"] != threads["trainer-gpu1"]

    def test_counter_attached_to_gpu_pid(self):
        doc = to_chrome_trace(make_tracer())
        pids = {e["args"]["name"]: e["pid"] for e in doc["traceEvents"]
                if e["ph"] == "M" and e["name"] == "process_name"}
        sm = [e for e in doc["traceEvents"] if e["ph"] == "C"
              and "gpu0-sm" in e["name"]]
        assert sm and sm[0]["pid"] == pids["gpu0"]
        assert sm[0]["args"] == {"used": 128}

    def test_timestamps_monotonic_and_microseconds(self):
        doc = to_chrome_trace(make_tracer())
        body = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        ts = [e["ts"] for e in body]
        assert ts == sorted(ts)
        span = next(e for e in body if e["name"] == "train-op")
        assert span["ts"] == 1.0e6 and span["dur"] == 1.0e6

    def test_spans_nest_within_track(self):
        doc = to_chrome_trace(make_tracer())
        xs = [e for e in doc["traceEvents"]
              if e["ph"] == "X" and e["args"].get("batch") == 0
              or e["ph"] == "X" and e["name"] == "wait"]
        outer = next(e for e in xs if e["name"] == "sample-op")
        inner = next(e for e in xs if e["name"] == "wait")
        assert (outer["pid"], outer["tid"]) == (inner["pid"], inner["tid"])
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_write_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(make_tracer(), path)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestTextExport:
    def test_lists_tracks_and_spans(self):
        text = to_text(make_tracer())
        assert "== sampler0-gpu0 ==" in text
        assert "sample-op" in text and "train-op" in text
        assert "rendezvous-wait" in text

    def test_empty_tracer(self):
        assert to_text(Tracer()) == ""
