"""Tests for the Tracer event container and the wait taxonomy."""

import pytest

from repro.obs import (
    CounterEvent,
    InstantEvent,
    SpanEvent,
    Tracer,
    WAIT_CATEGORIES,
    wait_category,
)


class TestTracer:
    def test_records_all_event_kinds(self):
        tr = Tracer()
        tr.span("t0", "op", cat="sample", start=1.0, end=2.5, batch=3)
        tr.instant("t0", "tick", ts=2.0, cat="mark")
        tr.counter("q0", "depth", ts=2.2, depth=1)
        assert len(tr) == 3
        kinds = [type(ev) for ev in tr.events]
        assert kinds == [SpanEvent, InstantEvent, CounterEvent]

    def test_span_duration_and_args(self):
        tr = Tracer()
        ev = tr.span("t", "op", start=1.0, end=4.0, gpu=2)
        assert ev.duration == pytest.approx(3.0)
        assert ev.args == {"gpu": 2}

    def test_filters(self):
        tr = Tracer()
        tr.span("a", "x", cat="sample", start=0, end=1)
        tr.span("b", "y", cat="load", start=0, end=1)
        tr.counter("a", "used", ts=0.5, used=3)
        tr.counter("a", "depth", ts=0.5, depth=1)
        assert [ev.name for ev in tr.spans(cat="load")] == ["y"]
        assert [ev.name for ev in tr.spans(track="a")] == ["x"]
        assert [ev.values for ev in tr.counters(track="a", name="used")] == [
            {"used": 3}
        ]

    def test_end_time(self):
        tr = Tracer()
        assert tr.end_time() == 0.0
        tr.span("t", "op", start=0.0, end=2.0)
        tr.instant("t", "late", ts=5.0)
        assert tr.end_time() == 5.0

    def test_declare_track(self):
        tr = Tracer()
        tr.declare_track("sampler0-gpu1", group="gpu1", sort=2)
        assert tr.tracks["sampler0-gpu1"] == {"group": "gpu1", "sort": 2}


class TestWaitCategory:
    @pytest.mark.parametrize("label, cat", [
        ("put(gpu0-trainq)", "queue-wait"),
        ("get(gpu3-loadq1)", "queue-wait"),
        ("acquire(gpu0-sm, 128)", "sm-wait"),
        ("acquire(gpu2-comm, 1)", "channel-wait"),
        ("barrier(collective, ('load', 0, 1))", "rendezvous-wait"),
        ("ccc(1, ('sample', 2, 0))", "gate-wait"),
        ("something-else", "wait"),
    ])
    def test_mapping(self, label, cat):
        assert wait_category(label) == cat

    def test_known_categories_cover_mapping(self):
        for label in ("put(q)", "acquire(gpu0-sm, 1)", "acquire(gpu0-comm, 1)",
                      "barrier(b, t)", "ccc(0, t)"):
            assert wait_category(label) in WAIT_CATEGORIES
