"""Integration: tracing through the pipeline runner (the ISSUE's
acceptance criteria — busy-fraction agreement, zero-cost-off, Fig 8
stall attribution, Chrome-trace validity of a real workload)."""

import numpy as np
import pytest

import repro.obs.tracer as tracer_mod
from repro.core.cost import OpCost
from repro.core.pipeline import PipelineRunner
from repro.hw import Cluster
from repro.obs import (
    Tracer,
    critical_path,
    sm_busy_times,
    stall_breakdown,
    to_chrome_trace,
)
from repro.utils import DeadlockError

K = 4


def kernel(dur, threads=1024):
    return OpCost(label="k", per_gpu=np.full(K, dur), stage=dur,
                  threads=threads)


def collective(dur, nvlink=1000.0):
    return OpCost(label="c", per_gpu=np.full(K, dur), stage=dur, threads=128,
                  collective=True, nvlink_bytes=nvlink)


def batches(n, sample_dur=1.0, load_dur=1.0, train_dur=1.0):
    """The Fig-12 style pipeline workload of the seed tests."""
    return [
        {
            "sample": [collective(sample_dur)],
            "load": [collective(load_dur)],
            "train": [kernel(train_dur)],
        }
        for _ in range(n)
    ]


def skewed_batches(n):
    """Fig 8: divergent collective launch orders across GPUs."""
    up = np.linspace(0.01, 0.4, K)
    down = up[::-1].copy()

    def local(per):
        return OpCost(label="k", per_gpu=per, stage=float(per.max()),
                      threads=256)

    return [
        {
            "sample": [local(up), collective(0.3)],
            "load": [local(down), collective(0.3)],
            "train": [kernel(0.05)],
        }
        for _ in range(n)
    ]


@pytest.fixture
def cluster():
    return Cluster.dgx1(K)


class TestBusyAgreement:
    def test_breakdown_busy_matches_pipeline_result(self, cluster):
        """Acceptance: per-GPU busy from the trace == the resource
        integral the runner reports, within 1e-6."""
        tr = Tracer()
        res = PipelineRunner(cluster, batches(8), tracer=tr).run()
        busy = sm_busy_times(tr, res.epoch_time, K)
        for g in range(K):
            assert busy[g] / res.epoch_time == pytest.approx(
                res.per_gpu_busy[g], abs=1e-6
            )
        bd = stall_breakdown(tr, res.epoch_time, K)
        mean = sum(b.busy for b in bd) / (K * res.epoch_time)
        assert mean == pytest.approx(res.busy_fraction, abs=1e-6)

    def test_tracing_does_not_change_the_simulation(self, cluster):
        b = batches(8)
        plain = PipelineRunner(cluster, b).run()
        traced = PipelineRunner(cluster, b, tracer=Tracer()).run()
        assert traced.epoch_time == plain.epoch_time
        assert traced.busy_fraction == plain.busy_fraction


class TestZeroCostWhenDisabled:
    def test_untraced_run_allocates_no_events(self, cluster, monkeypatch):
        """Acceptance: with no tracer attached, not one event object
        (nor a Tracer) is constructed during Simulator.run()."""
        def boom(*a, **kw):
            raise AssertionError("trace event allocated without a tracer")

        for cls in ("SpanEvent", "InstantEvent", "CounterEvent", "Tracer"):
            monkeypatch.setattr(tracer_mod, cls, boom)
        monkeypatch.setattr(Tracer, "span", boom)
        monkeypatch.setattr(Tracer, "instant", boom)
        monkeypatch.setattr(Tracer, "counter", boom)
        res = PipelineRunner(cluster, batches(8)).run()
        assert res.epoch_time > 0

    def test_multi_worker_untraced_also_clean(self, cluster, monkeypatch):
        monkeypatch.setattr(Tracer, "span", None)
        monkeypatch.setattr(Tracer, "counter", None)
        res = PipelineRunner(cluster, batches(8), sampler_workers=2,
                             loader_workers=2).run()
        assert res.epoch_time > 0


class TestChromeTraceOfPipeline:
    def test_valid_nested_monotonic(self, cluster):
        tr = Tracer()
        PipelineRunner(cluster, batches(6), tracer=tr).run()
        doc = to_chrome_trace(tr)
        body = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        ts = [e["ts"] for e in body]
        assert ts == sorted(ts)  # monotonically ordered
        # every GPU contributes a worker track with spans
        pids = {e["args"]["name"]: e["pid"] for e in doc["traceEvents"]
                if e["ph"] == "M" and e["name"] == "process_name"}
        for g in range(K):
            assert f"gpu{g}" in pids
        # spans on one (pid, tid) must nest (no partial overlap)
        per_track: dict = {}
        for e in body:
            if e["ph"] == "X":
                per_track.setdefault((e["pid"], e["tid"]), []).append(
                    (e["ts"], e["ts"] + e["dur"])
                )
        assert per_track
        eps = 1e-6
        for spans in per_track.values():
            stack = []
            for s, e in sorted(spans, key=lambda x: (x[0], -x[1])):
                while stack and stack[-1] <= s + eps:
                    stack.pop()
                assert not stack or e <= stack[-1] + eps
                stack.append(e)

    def test_op_spans_tagged(self, cluster):
        tr = Tracer()
        PipelineRunner(cluster, batches(3), tracer=tr).run()
        train = [ev for ev in tr.spans(cat="train")]
        assert len(train) == 3 * K
        for ev in train:
            assert set(ev.args) >= {"gpu", "stage", "batch", "collective"}
        assert sorted({ev.args["batch"] for ev in train}) == [0, 1, 2]

    def test_sequential_mode_traced_too(self, cluster):
        tr = Tracer()
        PipelineRunner(cluster, batches(3), sequential=True, tracer=tr).run()
        assert any(ev.track == "seq-gpu0" for ev in tr.spans())


class TestCounters:
    def test_link_byte_counters_cumulative_and_exact(self, cluster):
        tr = Tracer()
        PipelineRunner(cluster, batches(5), tracer=tr).run()
        points = list(tr.counters(track="link-bytes"))
        assert points
        series = [p.values["nvlink"] for p in points]
        assert series == sorted(series)  # cumulative
        # 5 batches x 2 collectives x 1000 bytes, cluster-wide
        assert series[-1] == pytest.approx(5 * 2 * 1000.0)

    def test_queue_depth_counters_bounded_by_capacity(self, cluster):
        tr = Tracer()
        PipelineRunner(cluster, batches(8), queue_capacity=2, tracer=tr).run()
        depths = [p.values["depth"] for p in tr.counters()
                  if "depth" in p.values]
        assert depths
        assert max(depths) <= 2

    def test_cache_counters_from_batch_info(self, cluster):
        tr = Tracer()
        info = [{"cache": {"local": 10, "remote": 3, "cold": 1}}
                for _ in range(4)]
        PipelineRunner(cluster, batches(4), tracer=tr, batch_info=info).run()
        points = list(tr.counters(track="cache"))
        assert len(points) == 4  # one per batch, emitted once (gpu 0)
        assert points[-1].values == {"local": 40, "remote": 12, "cold": 4}

    def test_batch_info_length_validated(self, cluster):
        from repro.utils import ConfigError

        with pytest.raises(ConfigError):
            PipelineRunner(cluster, batches(3), batch_info=[{}])


class TestFig8StallAttribution:
    def test_deadlock_trace_blames_channel_contention(self, cluster):
        """Acceptance: the ccc=False near-deadlock leaves unresolved
        gate/rendezvous/channel stall spans that show the Fig 8 cycle —
        collectives parked at the rendezvous while peers wait for the
        comm channel they hold."""
        tr = Tracer()
        with pytest.raises(DeadlockError):
            PipelineRunner(cluster, skewed_batches(6), ccc=False,
                           comm_channels=1, tracer=tr).run()
        stuck = [ev for ev in tr.spans() if ev.args.get("unresolved")]
        assert stuck
        cats = {ev.cat for ev in stuck}
        # the deadlock cycle: holders stuck at the rendezvous, waiters
        # stuck on the (single) channel those holders occupy
        assert "rendezvous-wait" in cats
        assert "channel-wait" in cats
        # every GPU participates in the stall
        gpus = {ev.track.rsplit("-gpu", 1)[1] for ev in stuck}
        assert gpus == {str(g) for g in range(K)}

    def test_ccc_removes_the_stall_spans(self, cluster):
        tr = Tracer()
        res = PipelineRunner(cluster, skewed_batches(6), ccc=True,
                             comm_channels=1, tracer=tr).run()
        assert res.epoch_time > 0
        stuck = [ev for ev in tr.spans() if ev.args.get("unresolved")]
        assert stuck == []  # no unresolved stalls: the epoch completed
        # with CCC the ordering waits move to the gate, and every one
        # of them resolves
        gate_waits = list(tr.spans(cat="gate-wait"))
        assert gate_waits
        assert all(not ev.args.get("unresolved") for ev in gate_waits)


class TestCriticalPathOfPipeline:
    def test_bottleneck_stage_dominates(self, cluster):
        """Sampler-bound workload: the critical path is mostly sample."""
        tr = Tracer()
        res = PipelineRunner(
            cluster, batches(10, sample_dur=2.0, load_dur=0.1, train_dur=0.1),
            tracer=tr,
        ).run()
        path = critical_path(tr)
        assert path[0].start == pytest.approx(0.0)
        assert path[-1].end == pytest.approx(res.epoch_time)
        by_cat: dict = {}
        for seg in path:
            by_cat[seg.cat] = by_cat.get(seg.cat, 0.0) + seg.duration
        assert by_cat["sample"] > 0.8 * res.epoch_time
