"""Tests for the stall-breakdown and critical-path analyses."""

import pytest

from repro.obs import (
    Tracer,
    critical_path,
    format_breakdown,
    format_critical_path,
    sm_busy_times,
    stall_breakdown,
)
from repro.obs.analysis import track_gpu


class TestTrackGpu:
    def test_parses_suffix(self):
        assert track_gpu("sampler0-gpu3") == 3
        assert track_gpu("trainer-gpu10") == 10
        assert track_gpu("link-bytes") is None


class TestSmBusy:
    def test_integrates_step_function(self):
        tr = Tracer()
        # gpu0-sm: busy 1..3 and 5..6 -> 3s of 10
        for ts, used in [(1.0, 128), (3.0, 0), (5.0, 64), (6.0, 0)]:
            tr.counter("gpu0-sm", "used", ts, used=used)
        busy = sm_busy_times(tr, total_time=10.0, num_gpus=2)
        assert busy[0] == pytest.approx(3.0)
        assert busy[1] == 0.0

    def test_open_tail_counts_to_total(self):
        tr = Tracer()
        tr.counter("gpu0-sm", "used", 2.0, used=1)
        busy = sm_busy_times(tr, total_time=10.0, num_gpus=1)
        assert busy[0] == pytest.approx(8.0)


class TestStallBreakdown:
    def test_attributes_waits_per_gpu_and_category(self):
        tr = Tracer()
        tr.span("sampler0-gpu0", "w", cat="rendezvous-wait", start=0, end=2)
        tr.span("loader0-gpu0", "w", cat="queue-wait", start=1, end=2)
        tr.span("trainer-gpu1", "w", cat="gate-wait", start=0, end=5)
        tr.span("trainer-gpu1", "op", cat="train", start=5, end=6)  # not a stall
        bd = stall_breakdown(tr, total_time=6.0, num_gpus=2)
        assert bd[0].stall("rendezvous-wait") == pytest.approx(2.0)
        assert bd[0].stall("queue-wait") == pytest.approx(1.0)
        assert bd[1].stall("gate-wait") == pytest.approx(5.0)
        assert bd[1].stall("queue-wait") == 0.0

    def test_format_contains_all_columns(self):
        tr = Tracer()
        tr.span("trainer-gpu0", "w", cat="sm-wait", start=0, end=1)
        text = format_breakdown(stall_breakdown(tr, 2.0, 2), 2.0)
        for col in ("busy", "queue", "sm", "channel", "rendezvous", "gate"):
            assert col in text
        assert "mean" in text


class TestCriticalPath:
    def test_chains_last_finishers(self):
        tr = Tracer()
        # a(0..2) -> b(2..5) on another track -> c(5..6)
        tr.span("trainer-gpu0", "a", cat="train", start=0, end=2)
        tr.span("sampler0-gpu1", "b", cat="sample", start=2, end=5)
        tr.span("trainer-gpu1", "c", cat="train", start=5, end=6)
        tr.span("loader0-gpu0", "short", cat="load", start=0, end=0.5)
        path = critical_path(tr)
        assert [seg.name for seg in path] == ["a", "b", "c"]
        assert path[0].start == 0.0 and path[-1].end == 6.0

    def test_idle_gap_becomes_segment(self):
        tr = Tracer()
        tr.span("t-gpu0", "a", cat="train", start=0, end=1)
        tr.span("t-gpu0", "b", cat="train", start=3, end=4)
        path = critical_path(tr)
        assert [seg.name for seg in path] == ["a", "idle", "b"]
        assert path[1].duration == pytest.approx(2.0)

    def test_wait_spans_excluded(self):
        tr = Tracer()
        tr.span("t-gpu0", "op", cat="train", start=0, end=1)
        tr.span("t-gpu0", "w", cat="queue-wait", start=1, end=9)
        path = critical_path(tr)
        assert [seg.name for seg in path] == ["op"]

    def test_zero_duration_spans_terminate(self):
        """Regression: free ops (zero-length spans, e.g. single-GPU
        collectives) must not stall the backward walk."""
        tr = Tracer()
        tr.span("t-gpu0", "free", cat="sample", start=1.0, end=1.0)
        tr.span("t-gpu0", "a", cat="train", start=0, end=1)
        tr.span("t-gpu0", "free2", cat="load", start=1.0, end=1.0)
        tr.span("t-gpu0", "b", cat="train", start=1, end=2)
        path = critical_path(tr)
        assert [seg.name for seg in path] == ["a", "b"]

    def test_all_spans_zero_duration(self):
        tr = Tracer()
        tr.span("t-gpu0", "free", cat="sample", start=0.0, end=0.0)
        assert critical_path(tr) == []

    def test_empty(self):
        assert critical_path(Tracer()) == []
        assert "no work spans" in format_critical_path([])

    def test_format_summarizes(self):
        tr = Tracer()
        tr.span("t-gpu0", "a", cat="train", start=0, end=2)
        text = format_critical_path(critical_path(tr))
        assert "critical path" in text and "train" in text
