"""Tests for the perf baseline regression gate and the fake clock."""

import pytest

from repro.bench.perf import _make_clock, diff_against_baseline
from repro.utils import ConfigError


def payload(quick=False, **speedups):
    return {
        "schema_version": 2,
        "quick": quick,
        "benchmarks": {
            name: {"speedup": s, "wall_s_before": 1.0,
                   "wall_s_after": 1.0 / s, "batches_per_s": s}
            for name, s in speedups.items()
        },
    }


class TestDiffAgainstBaseline:
    def test_no_regression_passes(self):
        report, regs = diff_against_baseline(
            payload(csp_layer=3.0, epoch=1.5),
            payload(csp_layer=3.1, epoch=1.4),
        )
        assert regs == []
        assert "ok" in report

    def test_regression_flagged_beyond_tolerance(self):
        report, regs = diff_against_baseline(
            payload(csp_layer=2.0), payload(csp_layer=3.0), tolerance=0.2
        )
        assert regs == ["csp_layer"]
        assert "REGRESSED" in report

    def test_within_tolerance_ok(self):
        _, regs = diff_against_baseline(
            payload(csp_layer=2.5), payload(csp_layer=3.0), tolerance=0.2
        )
        assert regs == []

    def test_improvement_never_regresses(self):
        _, regs = diff_against_baseline(
            payload(csp_layer=9.0), payload(csp_layer=3.0)
        )
        assert regs == []

    def test_one_sided_benchmarks_reported_not_gated(self):
        report, regs = diff_against_baseline(
            payload(csp_layer=3.0, sweep=2.0), payload(csp_layer=3.0)
        )
        assert regs == []
        assert "only in fresh run" in report
        report, regs = diff_against_baseline(
            payload(csp_layer=3.0), payload(csp_layer=3.0, old_bench=1.0)
        )
        assert regs == []
        assert "only in baseline" in report

    def test_quick_flag_mismatch_noted(self):
        report, _ = diff_against_baseline(
            payload(quick=True, csp_layer=3.0),
            payload(quick=False, csp_layer=3.0),
        )
        assert "quick flags differ" in report


class TestFakeClock:
    def test_fake_clock_is_deterministic(self):
        a, b = _make_clock("fake"), _make_clock("fake")
        assert [a() for _ in range(3)] == [b() for _ in range(3)]
        assert a() == pytest.approx(3e-3)  # 1ms per reading

    def test_wall_clock_and_callable_pass_through(self):
        import time

        assert _make_clock("wall") is time.perf_counter
        fn = lambda: 0.0  # noqa: E731
        assert _make_clock(fn) is fn

    def test_unknown_clock_rejected(self):
        with pytest.raises(ConfigError):
            _make_clock("sundial")
