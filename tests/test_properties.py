"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph import (
    CSRGraph,
    hash_partition,
    metis_partition,
    renumber_by_partition,
)
from repro.nn import Tensor, functional as F
from repro.sampling import GraphPatch, sample_neighbors
from repro.sampling.local import _ranges
from repro.cache.store import PartitionedCache, Placement

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def edge_lists(draw, max_nodes=30, max_edges=120):
    n = draw(st.integers(2, max_nodes))
    m = draw(st.integers(0, max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return n, np.array(src, dtype=np.int64), np.array(dst, dtype=np.int64)


@st.composite
def graphs(draw):
    n, src, dst = draw(edge_lists())
    return CSRGraph.from_edges(src, dst, num_nodes=n)


# ----------------------------------------------------------------------
# CSR invariants
# ----------------------------------------------------------------------
class TestCSRProperties:
    @given(edge_lists())
    @settings(max_examples=60)
    def test_from_edges_invariants(self, data):
        n, src, dst = data
        g = CSRGraph.from_edges(src, dst, num_nodes=n)
        assert g.indptr[0] == 0
        assert g.indptr[-1] == g.num_edges
        assert (np.diff(g.indptr) >= 0).all()
        assert g.num_edges <= len(src)  # dedup only removes
        if g.num_edges:
            assert 0 <= g.indices.min() and g.indices.max() < n
        # every deduplicated input edge is present
        for u, v in set(zip(src.tolist(), dst.tolist())):
            assert u in g.neighbors(v)

    @given(graphs())
    @settings(max_examples=40)
    def test_reverse_is_involution(self, g):
        rr = g.reverse().reverse()
        assert np.array_equal(rr.indptr, g.indptr)
        assert np.array_equal(np.sort(rr.indices), np.sort(g.indices))

    @given(graphs(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40)
    def test_permute_preserves_degrees(self, g, seed):
        perm = np.random.default_rng(seed).permutation(g.num_nodes)
        p = g.permute(perm)
        assert np.array_equal(np.sort(p.degrees), np.sort(g.degrees))


# ----------------------------------------------------------------------
# partitioning
# ----------------------------------------------------------------------
class TestPartitionProperties:
    @given(graphs(), st.integers(1, 4), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_metis_is_total_assignment(self, g, k, seed):
        if k > g.num_nodes:
            k = g.num_nodes
        p = metis_partition(g, k, rng=seed)
        assert p.num_nodes == g.num_nodes
        assert p.assignment.min() >= 0
        assert p.assignment.max() < k

    @given(st.integers(1, 200), st.integers(1, 8))
    @settings(max_examples=40)
    def test_hash_partition_balance(self, n, k):
        if k > n:
            k = n
        sizes = hash_partition(n, k).part_sizes
        assert sizes.sum() == n
        assert sizes.max() - sizes.min() <= 1

    @given(graphs(), st.integers(1, 4), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_renumber_roundtrip(self, g, k, seed):
        if k > g.num_nodes:
            k = g.num_nodes
        part = hash_partition(g.num_nodes, k, seed=seed)
        _, _, nb = renumber_by_partition(g, part)
        ids = np.arange(g.num_nodes)
        assert np.array_equal(nb.old_to_new[nb.new_to_old], ids)
        # ownership agrees with the original partition
        assert np.array_equal(
            nb.owner_of(nb.old_to_new), part.assignment
        )


# ----------------------------------------------------------------------
# sampling
# ----------------------------------------------------------------------
class TestSamplerProperties:
    @given(graphs(), st.integers(0, 8), st.booleans(), st.integers(0, 500))
    @settings(max_examples=50, deadline=None)
    def test_samples_always_valid(self, g, fanout, replace, seed):
        patch = GraphPatch.full(g)
        tasks = np.arange(g.num_nodes, dtype=np.int64)
        src, counts = sample_neighbors(
            patch, tasks, fanout, rng=seed, replace=replace
        )
        assert counts.sum() == len(src)
        offsets = np.concatenate([[0], np.cumsum(counts)])
        deg = g.degrees
        for i, v in enumerate(tasks):
            seg = src[offsets[i] : offsets[i + 1]]
            assert set(seg.tolist()) <= set(g.neighbors(int(v)).tolist())
            if replace:
                assert counts[i] == (fanout if deg[v] > 0 else 0)
            else:
                assert counts[i] == min(fanout, deg[v])
                assert len(np.unique(seg)) == len(seg)

    @given(st.lists(st.integers(0, 9), min_size=0, max_size=30))
    @settings(max_examples=60)
    def test_ranges_matches_reference(self, sizes):
        sizes = np.array(sizes, dtype=np.int64)
        expect = np.concatenate(
            [np.arange(s) for s in sizes] or [np.empty(0, dtype=np.int64)]
        )
        assert np.array_equal(_ranges(sizes), expect)


# ----------------------------------------------------------------------
# cache placement
# ----------------------------------------------------------------------
class TestCacheProperties:
    @given(st.integers(2, 6), st.integers(0, 40), st.integers(0, 99))
    @settings(max_examples=40)
    def test_placement_partitions_requests(self, k, budget, seed):
        rng = np.random.default_rng(seed)
        n = 12 * k
        offsets = np.arange(k + 1) * 12
        hot = rng.permutation(n)
        store = PartitionedCache(offsets, hot, budget)
        req = rng.integers(0, n, size=30)
        for gpu in range(k):
            loc = store.locate(req, gpu)
            assert (
                loc.count(Placement.LOCAL)
                + loc.count(Placement.REMOTE)
                + loc.count(Placement.COLD)
                == len(req)
            )
            # LOCAL nodes must be owned by the requester
            local = req[loc.placement == Placement.LOCAL]
            assert all(offsets[gpu] <= v < offsets[gpu + 1] for v in local)
            # holders of REMOTE nodes are valid other GPUs
            rem = loc.holder[loc.placement == Placement.REMOTE]
            assert all(0 <= h < k and h != gpu for h in rem)


# ----------------------------------------------------------------------
# autograd
# ----------------------------------------------------------------------
class TestAutogradProperties:
    @given(
        st.integers(1, 5), st.integers(1, 5), st.integers(1, 4),
        st.integers(0, 10_000),
    )
    @settings(max_examples=40)
    def test_matmul_grad_matches_numeric(self, n, m, p, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(n, m)).astype(np.float32)
        b = rng.normal(size=(m, p)).astype(np.float32)
        ta = Tensor(a, requires_grad=True)
        (ta @ Tensor(b)).sum().backward()
        # d/dA sum(A@B) = row-broadcast of B's row sums
        expect = np.tile(b.sum(axis=1), (n, 1))
        np.testing.assert_allclose(ta.grad, expect, rtol=1e-4, atol=1e-5)

    @given(st.integers(1, 30), st.integers(1, 6), st.integers(0, 10_000))
    @settings(max_examples=40)
    def test_segment_mean_weighted_grad_sums_to_weights(self, rows, segs, seed):
        rng = np.random.default_rng(seed)
        seg = rng.integers(0, segs, size=rows)
        x = Tensor(rng.normal(size=(rows, 2)).astype(np.float32),
                   requires_grad=True)
        out = F.segment_mean(x, seg, segs)
        out.sum().backward()
        # rows in the same segment share identical gradient 1/|segment|
        counts = np.bincount(seg, minlength=segs)
        for i in range(rows):
            np.testing.assert_allclose(
                x.grad[i], 1.0 / counts[seg[i]], rtol=1e-5
            )

    @given(st.integers(1, 20), st.integers(0, 10_000))
    @settings(max_examples=40)
    def test_softmax_rows_are_distributions(self, rows, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(scale=5, size=(rows, 7)).astype(np.float32))
        p = np.exp(F.log_softmax(x).data)
        np.testing.assert_allclose(p.sum(axis=1), 1.0, rtol=1e-4)
        assert (p >= 0).all()


# ----------------------------------------------------------------------
# chaos: fault injection never wedges or corrupts the simulation
# ----------------------------------------------------------------------
def _chaos_pipeline(plan):
    """A small synthetic pipeline under ``plan``, fully audited."""
    from repro.chaos import FaultInjector, InvariantChecker
    from repro.core.cost import OpCost
    from repro.core.pipeline import PipelineRunner
    from repro.hw import Cluster

    k = 2
    local = OpCost("k", np.full(k, 0.3), 0.3, 1024)
    coll = OpCost("c", np.full(k, 0.2), 0.2, 128, collective=True,
                  nvlink_bytes=1e6, pcie_bytes=2e5)
    b = [{"sample": [coll], "load": [coll], "train": [local]}] * 4
    injector = None if plan.fault_free else FaultInjector(plan)
    runner = PipelineRunner(Cluster.dgx1(k), b, injector=injector,
                            invariants=InvariantChecker())
    return runner.run()


class TestChaosProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_plans_never_deadlock_or_corrupt(self, seed):
        """Whatever a random plan injects, the simulation terminates —
        either completing (invariants clean) or with a *diagnosed*
        PipelineStall; a raw DeadlockError or InvariantViolation is a
        bug in the fault-response layer."""
        from repro.chaos import FaultPlan
        from repro.utils import PipelineStall

        plan = FaultPlan.random(seed=seed, num_gpus=2, horizon=3.0,
                                max_events=4)
        try:
            res = _chaos_pipeline(plan)
        except PipelineStall as err:
            assert err.dead  # the stall names who died
        else:
            assert res.epoch_time > 0
            assert res.invariants["clean"]

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_fault_free_plan_is_bit_identical(self, seed):
        """An empty plan (whatever its seed) leaves the replay untouched."""
        from repro.chaos import FaultPlan

        baseline = _chaos_pipeline(FaultPlan())
        audited = _chaos_pipeline(FaultPlan(seed=seed))
        assert audited.epoch_time == baseline.epoch_time
        assert audited.utilization == baseline.utilization
        assert audited.lost_batches == 0

    @given(st.integers(0, 100_000))
    @settings(max_examples=100)
    def test_random_plans_round_trip_json(self, seed):
        import json

        from repro.chaos import FaultPlan

        plan = FaultPlan.random(seed=seed, num_gpus=4, horizon=1.0,
                                max_events=6)
        data = json.loads(json.dumps(plan.to_dict()))
        assert FaultPlan.from_dict(data) == plan
