"""Tests for the utils package."""

import numpy as np
import pytest

from repro.utils import (
    DeadlockError,
    GB,
    KB,
    MB,
    fmt_bytes,
    fmt_time,
    make_rng,
    spawn_rngs,
)


class TestUnits:
    def test_constants(self):
        assert KB == 1024 and MB == 1024 * KB and GB == 1024 * MB

    @pytest.mark.parametrize("n,expect", [
        (0, "0.00 B"),
        (512, "512.00 B"),
        (2048, "2.00 KiB"),
        (3 * MB, "3.00 MiB"),
        (5 * GB, "5.00 GiB"),
    ])
    def test_fmt_bytes(self, n, expect):
        assert fmt_bytes(n) == expect

    @pytest.mark.parametrize("t,expect", [
        (5e-7, "0.50 us"),
        (2.5e-3, "2.50 ms"),
        (1.5, "1.50 s"),
        (300, "5.00 min"),
    ])
    def test_fmt_time(self, t, expect):
        assert fmt_time(t) == expect

    def test_fmt_time_negative(self):
        assert fmt_time(-1.5) == "-1.50 s"


class TestRng:
    def test_make_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_make_rng_seeded_deterministic(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_spawn_independent(self):
        children = spawn_rngs(make_rng(0), 3)
        vals = [c.random() for c in children]
        assert len(set(vals)) == 3

    def test_spawn_deterministic(self):
        a = [r.random() for r in spawn_rngs(make_rng(1), 2)]
        b = [r.random() for r in spawn_rngs(make_rng(1), 2)]
        assert a == b

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(make_rng(0), -1)


class TestErrors:
    def test_deadlock_error_carries_waiting(self):
        err = DeadlockError("stuck", waiting={"a": "x"})
        assert err.waiting == {"a": "x"}
        assert "stuck" in str(err)

    def test_deadlock_error_default_waiting(self):
        assert DeadlockError("x").waiting == {}


class TestBenchHarness:
    def test_fmt_table_formats(self):
        from repro.bench import fmt_table

        out = fmt_table("Title", ["a", "b"], [("row", [1.23456, "x"])],
                        unit="ms")
        assert "Title (ms)" in out
        assert "1.23" in out and "x" in out

    def test_fmt_table_none_cell(self):
        from repro.bench import fmt_table

        out = fmt_table("T", ["a"], [("r", [None])])
        assert "-" in out

    def test_quick_mode_env(self, monkeypatch):
        from repro.bench import quick_mode

        monkeypatch.delenv("REPRO_BENCH_QUICK", raising=False)
        assert not quick_mode()
        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        assert quick_mode()
        monkeypatch.setenv("REPRO_BENCH_QUICK", "0")
        assert not quick_mode()
