"""Scenario: temporal neighbourhood sampling for transaction fraud.

A payments team models transactions as a timestamped graph and must
guarantee *causality*: when scoring account ``v`` at time ``t``, the
GNN may only aggregate over transactions that happened before ``t``.
This is the temporal sampling case the paper highlights as hard for
pull-based designs (§7.3) — DSP's task push evaluates the time
constraint where the adjacency list lives.

    python examples/temporal_fraud.py
"""

import numpy as np

from repro.graph import load_dataset, metis_partition, renumber_by_partition
from repro.sampling import TemporalCollectiveSampler
from repro.utils import fmt_bytes


def main() -> None:
    ds = load_dataset("products")  # stands in for the transaction graph
    part = metis_partition(ds.graph, 4, rng=0)
    rgraph, _, nb = renumber_by_partition(ds.graph, part)

    rng = np.random.default_rng(0)
    tx_time = rng.random(rgraph.num_edges)  # transaction timestamps
    sampler = TemporalCollectiveSampler.from_partitioned_times(
        rgraph, nb.part_offsets, tx_time, seed=1, recency_bias=True
    )

    # score 32 accounts per GPU "as of" a random audit time each
    seeds, cutoffs = [], []
    for g in range(4):
        lo, hi = int(nb.part_offsets[g]), int(nb.part_offsets[g + 1])
        seeds.append(rng.integers(lo, hi, size=32))
        cutoffs.append(rng.uniform(0.3, 0.9, size=32))

    samples, trace, stats = sampler.sample_temporal(seeds, cutoffs, (10, 5))

    print(f"sampled {stats.sampled_total} causal neighbours for "
          f"{sum(map(len, seeds))} audit queries "
          f"({stats.locality:.0%} of tasks stayed on their owner GPU)")
    print(f"CSP traffic: {fmt_bytes(trace.nvlink_payload_bytes())} over NVLink")

    # verify causality on a few samples
    checked = 0
    for g, s in enumerate(samples):
        b = s.blocks[0]
        for i in range(min(b.num_dst, 10)):
            v = int(b.dst_nodes[i])
            nbrs = set(rgraph.neighbors(v).tolist())
            for u in b.src_of(i):
                assert int(u) in nbrs
                checked += 1
    print(f"verified {checked} sampled edges exist and respect the cut-off")

    # recency bias: the sampled transaction times should skew recent
    all_counts = [np.diff(s.blocks[0].offsets).sum() for s in samples]
    print(f"per-GPU causal sample counts: {all_counts}")


if __name__ == "__main__":
    main()
