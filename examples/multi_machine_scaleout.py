"""Scenario: scaling a citation-graph training job past one server.

The nightly papers-graph job outgrew a single 8-GPU machine.  The
paper's §3.2 sketches DSP's answer: replicate topology and hot features
per machine, shard the cold features, and let machines talk only for
cold features and gradient synchronization.  This script sweeps machine
counts and network fabrics to show when scale-out pays.

    python examples/multi_machine_scaleout.py
"""

from repro.core import RunConfig
from repro.core.multimachine import MultiMachineDSP
from repro.hw.devices import NetworkSpec
from repro.utils import GB, fmt_bytes, fmt_time


def main() -> None:
    cfg = RunConfig(dataset="papers", num_gpus=4)

    print("== scaling machines (4 GPUs each, 100 Gb/s fabric)")
    base = None
    for machines in (1, 2, 4):
        mm = MultiMachineDSP(cfg, num_machines=machines)
        m = mm.run_epoch(max_batches=4, functional=False)
        base = base or m.epoch_time
        print(f"  {machines} machine(s): epoch {fmt_time(m.epoch_time):>10} "
              f"(speedup {base / m.epoch_time:4.2f}x, "
              f"network {fmt_bytes(m.network_bytes):>10}/epoch)")

    print("\n== fabric sensitivity (2 machines, cold features)")
    for label, bw in (("100 GbE", 12.5 * GB), ("25 GbE", 3.125 * GB),
                      ("10 GbE", 1.25 * GB)):
        mm = MultiMachineDSP(
            cfg.with_(feature_cache_bytes=0.0),
            num_machines=2,
            network=NetworkSpec(bandwidth=bw),
        )
        m = mm.run_epoch(max_batches=4, functional=False)
        print(f"  {label:>8}: epoch {fmt_time(m.epoch_time):>10} "
              f"(network {fmt_bytes(m.network_bytes):>10})")

    print("\nwith hot features replicated, the fabric only carries the "
          "gradient ring -- §3.2's design point")


if __name__ == "__main__":
    main()
