"""Scenario: DeepWalk-style random walks on a social (gaming) network.

A social platform wants node2vec/DeepWalk features for its friend graph
(the paper's Friendster workload).  Random walks are a special case of
CSP — node-wise sampling with fan-out 1 where the walk state travels
with the data and the reshuffle stage disappears (paper §4.2).  This
script runs distributed walks over the partitioned graph, verifies them
against the topology, and reports the walk-state traffic CSP moved.

    python examples/social_random_walks.py
"""

import numpy as np

from repro.core import RunConfig
from repro.core.system import DSP
from repro.sampling import random_walk
from repro.utils import fmt_bytes


def main() -> None:
    cfg = RunConfig(dataset="friendster", num_gpus=8)
    print("building the partitioned friendster graph (first run may "
          "generate the dataset)...")
    dsp = DSP(cfg)

    rng = np.random.default_rng(0)
    starts = []
    for g in range(cfg.num_gpus):
        lo = int(dsp.sampler.part_offsets[g])
        hi = int(dsp.sampler.part_offsets[g + 1])
        starts.append(rng.integers(lo, hi, size=64))

    length = 8
    paths, trace = random_walk(
        dsp.sampler, starts, length=length, stop_prob=0.05, seed=1
    )

    total = sum(len(p) for p in paths)
    finished = sum(int((p[:, -1] >= 0).sum()) for p in paths)
    hops = sum(int((p >= 0).sum()) - len(p) for p in paths)
    print(f"\nwalked {total} walks of length {length} "
          f"({finished} reached full length, {hops} total hops)")
    print(f"walk-state traffic over NVLink: "
          f"{fmt_bytes(trace.nvlink_payload_bytes())}")

    # verify a few paths against the graph
    graph = dsp.data.graph
    checked = 0
    for p in paths:
        for row in p[:4]:
            for t in range(length):
                if row[t + 1] < 0:
                    break
                assert row[t + 1] in graph.neighbors(int(row[t]))
                checked += 1
    print(f"verified {checked} hops against the adjacency lists: OK")

    # a toy skip-gram-style co-occurrence count as the downstream use
    window = 2
    pairs = 0
    for p in paths:
        for row in p:
            valid = row[row >= 0]
            pairs += max(0, len(valid) - window) * window
    print(f"{pairs} (node, context) training pairs extracted")


if __name__ == "__main__":
    main()
