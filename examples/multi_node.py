"""Capacity scaling with serving replicas under a diurnal workload.

A storefront's traffic is not flat: the diurnal arrival process swings
between a quiet trough and a rush-hour peak.  One DSP serving system
(2 simulated GPUs here) has a knee — the highest offered QPS it
sustains at the p99 SLO without shedding — and once the peak crosses
that knee the only lever left is replication: identical copies of the
whole serving system behind the cluster router.

Partition-affinity routing gives each replica one contiguous slice of
every GPU patch, so a node always hits the same replica (warm plan
cache, hot feature rows) while the load still spreads over every
replica's GPU batchers.  This walkthrough sweeps the offered load for
1, 2 and 4 replicas and prints the knee scaling curve — the same law
`benchmarks/test_cluster_knee.py` asserts (see `docs/cluster.md`):

    python examples/multi_node.py
"""

from repro import RunConfig, build_system
from repro.cluster import RouterConfig, knee_vs_replicas, serve_replicated
from repro.serve import ServeConfig, WorkloadConfig, make_workload

REPLICAS = (1, 2, 4)
LADDER = [2000e3, 3200e3, 5000e3, 8000e3, 12800e3, 20000e3,
          32000e3, 51200e3]


def main() -> None:
    config = RunConfig(dataset="tiny", num_gpus=2, hidden_dim=16,
                       batch_size=8, fanout=(5, 3), seed=0)
    system = build_system("DSP", config)
    print(f"serving {config.dataset!r} on {config.num_gpus} simulated "
          f"GPUs per replica (DSP, diurnal arrivals)\n")

    workload = make_workload(
        WorkloadConfig(num_requests=1024, arrival="diurnal", skew=1.0,
                       seed=7),
        system.data.train_nodes,
    )
    serve_cfg = ServeConfig(batch_max=32, batch_timeout_s=0.3e-3,
                            queue_capacity=128, slo_s=1e-3,
                            functional=True)

    # one replica at rush-hour load: the knee in action
    qps = LADDER[3]
    report = serve_replicated(system, workload, qps,
                              RouterConfig(num_replicas=1),
                              config=serve_cfg)
    verdict = "over the knee" if report.shed_rate > 0.01 else "sustained"
    print(f"one replica at {qps / 1e6:.1f}M QPS: "
          f"p99 {report.p99 * 1e3:.2f} ms, shed {report.shed_rate:.1%} "
          f"-> {verdict}")

    knees = knee_vs_replicas(system, workload, LADDER, REPLICAS,
                             policy="affinity", config=serve_cfg)

    print(f"\n{'replicas':>9} {'knee QPS':>10} {'vs 1 replica':>13}")
    for r in REPLICAS:
        print(f"{r:>9} {knees[r] / 1e6:>9.1f}M {knees[r] / knees[1]:>12.1f}x")

    print("\nthe knee never degrades as replicas are added — each extra"
          "\nreplica serves a strictly smaller slice of every GPU patch")


if __name__ == "__main__":
    main()
