"""Scenario: capacity planning for a citation-graph training cluster.

An ML-infrastructure team trains on a papers-scale citation graph and
must decide (a) how many GPUs the nightly job needs and (b) how to
split each GPU's spare memory between graph topology and the feature
cache.  Both questions are answered by DSP's cost model without
touching real hardware: a GPU-count scaling sweep (Table 4 style) and a
cache-split sweep (Fig 10 style).

    python examples/capacity_planning.py
"""

from repro import RunConfig, build_system, load_dataset
from repro.utils import GB, fmt_time


def gpu_scaling(dataset: str) -> None:
    print(f"== GPU-count scaling for {dataset!r} (DSP)")
    base = None
    for k in (1, 2, 4, 8):
        m = build_system(
            "DSP", RunConfig(dataset=dataset, num_gpus=k)
        ).run_epoch(max_batches=6, functional=False)
        base = base or m.epoch_time
        print(f"  {k} GPU{'s' if k > 1 else ' '}: epoch {fmt_time(m.epoch_time):>10} "
              f"(speedup {base / m.epoch_time:4.2f}x, "
              f"occupancy {m.utilization:.0%})")
    print()


def cache_split(dataset: str, budget_gb: float = 6.0) -> None:
    spec = load_dataset(dataset).spec
    total = budget_gb * GB / spec.scale
    print(f"== cache-split planning for {dataset!r}, "
          f"{budget_gb:.0f} GB/GPU budget (scaled), 8 GPUs")
    best = (float("inf"), None)
    for frac in (0.1, 0.3, 0.5, 0.7, 0.9):
        cfg = RunConfig(
            dataset=dataset,
            num_gpus=8,
            feature_cache_bytes=total * frac,
            topology_cache_bytes=total * (1 - frac),
        )
        system = build_system("DSP", cfg)
        m = system.run_epoch(max_batches=4, functional=False)
        cov = system.layout.topology_coverage
        print(f"  features {frac:3.0%} of budget: epoch {fmt_time(m.epoch_time):>10}, "
              f"topology {cov:4.0%} GPU-resident")
        best = min(best, (m.epoch_time, frac))
    print(f"  -> recommended split: {best[1]:.0%} features "
          f"({fmt_time(best[0])} per epoch)\n")


def main() -> None:
    gpu_scaling("papers")
    cache_split("papers")


if __name__ == "__main__":
    main()
