"""Online serving: a product-recommendation front-end on `products`.

A trained DSP deployment answers "which category is this product?"
queries arriving as an open-loop Poisson stream with Zipf-skewed
popularity (hot products dominate, as in any storefront).  Requests
are dynamically batched per GPU (max-size / max-wait), sampled with
the Collective Sampling Primitive, features come from the partitioned
NVLink cache, and the forward pass runs on the simulated DGX-1.

The sweep raises the offered load until the p99 latency blows through
the SLO — the latency–throughput knee.  Run it to see where DSP
saturates and how latency decomposes by pipeline stage:

    python examples/online_serving.py
"""

import numpy as np

from repro import RunConfig, build_system
from repro.serve import (
    ServeConfig,
    WorkloadConfig,
    make_workload,
    max_sustainable_qps,
    qps_sweep,
)
from repro.utils import fmt_time


def main() -> None:
    config = RunConfig(dataset="products", num_gpus=4, seed=0)
    system = build_system("DSP", config)
    print(f"serving {config.dataset!r} recommendations on "
          f"{config.num_gpus} simulated GPUs (DSP)\n")

    # a short warm-up so served predictions come from a trained model
    for _ in range(2):
        system.run_epoch()

    workload = make_workload(
        WorkloadConfig(num_requests=512, arrival="poisson", skew=1.0,
                       seed=0),
        np.arange(system.base_dataset.num_nodes),
    )
    serve_cfg = ServeConfig(batch_max=32, batch_timeout_s=0.5e-3,
                            queue_capacity=128, slo_s=2e-3,
                            functional=True)

    ladder = [5e3, 20e3, 80e3, 320e3]
    points = qps_sweep(system, workload, ladder, serve_cfg)

    print(f"{'offered QPS':>12} {'p50':>10} {'p99':>10} {'goodput':>12} "
          f"{'shed':>6} {'batch':>6} {'accuracy':>9}")
    for p in points:
        r = p.report
        print(f"{p.qps:>12.0f} {fmt_time(r.p50):>10} {fmt_time(r.p99):>10} "
              f"{r.goodput_qps:>10.0f}/s {r.shed_rate:>6.1%} "
              f"{r.mean_batch_size:>6.1f} {r.accuracy:>9.1%}")

    knee = max_sustainable_qps(points)
    print(f"\nmax sustainable QPS at p99 <= "
          f"{fmt_time(serve_cfg.slo_s)}: {knee:.0f}")

    last = points[-1].report
    print("\nlatency decomposition at the highest load (means):")
    for stage, secs in last.stage_means.items():
        print(f"  {stage:<8} {fmt_time(secs):>10}")


if __name__ == "__main__":
    main()
