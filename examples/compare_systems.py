"""Scenario: choosing a training system for an e-commerce co-purchase
graph (the paper's `products` workload).

A platform team wants to train a 3-layer GraphSAGE recommender over the
product co-purchase graph and must pick a GNN training stack for their
8-GPU server.  This script runs the five architectures the paper
compares on the same workload and prints epoch time, the stage
breakdown and the communication bill for each — the Table 4 experiment
as a decision tool.

    python examples/compare_systems.py [dataset] [num_gpus]
"""

import sys

from repro import RunConfig, build_system
from repro.bench.harness import TABLE_SYSTEMS
from repro.utils import fmt_bytes, fmt_time


def main() -> None:
    dataset = sys.argv[1] if len(sys.argv) > 1 else "products"
    num_gpus = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    cfg = RunConfig(dataset=dataset, num_gpus=num_gpus)
    print(f"workload: 3-layer GraphSAGE, fan-out {cfg.fanout}, "
          f"{dataset!r} on {num_gpus} simulated GPUs\n")

    print(f"{'system':<10} {'epoch':>12} {'sample':>12} {'load':>12} "
          f"{'train':>12} {'NVLink':>12} {'PCIe':>12}")
    results = {}
    for name in TABLE_SYSTEMS:
        system = build_system(name, cfg)
        m = system.run_epoch(max_batches=6, functional=False)
        results[name] = m
        print(f"{name:<10} {fmt_time(m.epoch_time):>12} "
              f"{fmt_time(m.sample_time):>12} {fmt_time(m.load_time):>12} "
              f"{fmt_time(m.train_time):>12} {fmt_bytes(m.nvlink_bytes):>12} "
              f"{fmt_bytes(m.pcie_bytes):>12}")

    best_baseline = min(
        (m.epoch_time, n) for n, m in results.items() if n != "DSP"
    )
    speedup = best_baseline[0] / results["DSP"].epoch_time
    print(f"\nDSP vs best baseline ({best_baseline[1]}): "
          f"{speedup:.2f}x faster per epoch")
    print("note: simulated times are ~1/scale of the paper's wall times; "
          "compare ratios (see EXPERIMENTS.md)")


if __name__ == "__main__":
    main()
