"""Quickstart: train a GraphSAGE model with DSP on a small dataset.

Runs in a few seconds.  Shows the three things every run gives you:
real training progress (loss/accuracy), simulated hardware time, and
the communication accounting behind it.

    python examples/quickstart.py
"""

from repro import RunConfig, build_system
from repro.utils import fmt_bytes, fmt_time


def main() -> None:
    config = RunConfig(
        dataset="tiny",  # 1k-node synthetic graph, generated on the fly
        num_gpus=4,
        model="sage",
        hidden_dim=32,
        batch_size=16,
        fanout=(10, 5),
        lr=1e-2,
        seed=0,
    )
    system = build_system("DSP", config)
    print(f"training {config.model} on {config.dataset!r} with "
          f"{config.num_gpus} simulated GPUs\n")

    print(f"{'epoch':>5} {'loss':>8} {'train acc':>10} {'val acc':>8} "
          f"{'sim epoch time':>15}")
    for epoch in range(5):
        m = system.run_epoch()
        print(f"{epoch:>5} {m.loss:>8.3f} {m.train_accuracy:>10.1%} "
              f"{m.val_accuracy:>8.1%} {fmt_time(m.epoch_time):>15}")

    print("\nlast-epoch communication:")
    print(f"  NVLink: {fmt_bytes(m.nvlink_bytes)}")
    print(f"  PCIe:   {fmt_bytes(m.pcie_bytes)}")
    print(f"  GPU occupancy: {m.utilization:.1%}")
    print(f"  feature-cache hits: {m.cache_stats}")


if __name__ == "__main__":
    main()
